//! Regenerates extension **E1** (model-family comparison under
//! leave-one-program-out CV), then benchmarks the training cost of each
//! family on the real training database.

use criterion::{criterion_group, criterion_main, Criterion};
use hetpart_bench::{banner, bench_context};
use hetpart_core::{eval, FeatureSet};
use hetpart_ml::{ModelConfig, Pipeline};

fn model_table(c: &mut Criterion) {
    let ctx = bench_context();
    banner("E1: prediction model comparison");
    println!("{}", eval::model_comparison(&ctx).render());

    let (data, space) = ctx.dbs[0].to_dataset(FeatureSet::Both);
    let mut g = c.benchmark_group("model_training");
    g.sample_size(10);
    for cfg in ModelConfig::all_defaults() {
        g.bench_function(cfg.name(), |b| {
            b.iter(|| Pipeline::fit(&cfg, &data.x, &data.y, space.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, model_table);
criterion_main!(benches);
