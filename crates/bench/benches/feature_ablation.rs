//! Regenerates extension **E2** (static-only vs runtime-only vs combined
//! features — the paper's case for problem-size-sensitive features), then
//! benchmarks static feature extraction at compile time.

use criterion::{criterion_group, criterion_main, Criterion};
use hetpart_bench::{banner, bench_context};
use hetpart_core::eval;
use hetpart_inspire::{compile, features};
use std::hint::black_box;

fn feature_ablation(c: &mut Criterion) {
    let ctx = bench_context();
    banner("E2: feature-set ablation");
    println!("{}", eval::feature_ablation(&ctx).render());

    let bench = hetpart_suite::by_name("srad").expect("exists");
    let kernel = compile(bench.source).unwrap();
    let mut g = c.benchmark_group("feature_extraction");
    g.bench_function("compile_srad", |b| {
        b.iter(|| compile(black_box(bench.source)).unwrap())
    });
    g.bench_function("static_features_srad", |b| {
        b.iter(|| features::extract(black_box(&kernel.ir)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = feature_ablation
}
criterion_main!(benches);
