//! Regenerates prose claim **P1** ("on mc1 the CPU-only strategy usually
//! wins; on mc2 the GPU-only strategy usually performs better"), then
//! benchmarks the oracle partition sweep the comparison is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use hetpart_bench::{banner, bench_context};
use hetpart_core::eval;
use hetpart_oclsim::machines;
use hetpart_runtime::{sweep_partitions, Executor, Launch};

fn default_strategies(c: &mut Criterion) {
    let ctx = bench_context();
    banner("P1: default-strategy comparison per machine");
    let rep = eval::default_strategy_comparison(&ctx);
    println!("{}", rep.render());
    for m in &rep.machines {
        println!("{} GPU-winning programs: {:?}", m.machine, m.gpu_wins);
    }
    println!();

    let bench = hetpart_suite::by_name("vec_add").expect("exists");
    let kernel = bench.compile();
    let inst = bench.instance(bench.default_size());
    let ex = Executor::new(machines::mc2());
    let launch = Launch::new(&kernel, inst.nd.clone(), inst.args.clone());
    c.benchmark_group("default_strategies")
        .sample_size(10)
        .bench_function("sweep_66_partitions_vec_add", |b| {
            b.iter(|| sweep_partitions(&ex, &launch, &inst.bufs, 1).unwrap())
        });
}

criterion_group!(benches, default_strategies);
criterion_main!(benches);
