//! # hetpart-bench
//!
//! Shared setup for the Criterion benchmark harness. Every bench target
//! regenerates one figure/table of the paper (printed once at startup)
//! and then times a representative primitive of that experiment so
//! `cargo bench` also yields stable performance numbers.
//!
//! | bench target | reproduces |
//! |---|---|
//! | `fig1` | Figure 1 (speedups over CPU-only / GPU-only, both machines) |
//! | `default_strategies` | prose claim P1 (which default wins where) |
//! | `size_sensitivity` | prose claim P2 (optimum moves with size/machine) |
//! | `model_table` | extension E1 (model family comparison) |
//! | `feature_ablation` | extension E2 (static vs runtime features) |
//! | `step_sensitivity` | extension E3 (partition-space granularity) |
//! | `micro` | compiler/VM/runtime/ML primitive costs |

use hetpart_core::{eval::EvalContext, HarnessConfig};

/// The evaluation context used by the experiment benches: the full
/// 23-program suite, 3 sizes per benchmark, the paper's 10% partition
/// space, the ANN model.
pub fn bench_context() -> EvalContext {
    let cfg = HarnessConfig {
        sizes_per_benchmark: 3,
        ..HarnessConfig::paper()
    };
    EvalContext::build_full_suite(cfg)
}

/// Print a banner separating the regenerated report from Criterion noise.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(74));
    println!("{title}");
    println!("{}\n", "=".repeat(74));
}
