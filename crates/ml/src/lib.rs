//! # hetpart-ml
//!
//! From-scratch machine learning for the task-partitioning predictor: the
//! paper's ANN plus standard comparators (decision tree, random forest,
//! k-NN, linear SVM), feature scaling, and the cross-validation schemes
//! used by the evaluation — including leave-one-program-out, which is the
//! paper's deployment scenario (predict for a program the model has never
//! seen).
//!
//! Everything is deterministic for fixed seeds and serializable with
//! serde, so trained predictors can be persisted and reloaded.
//!
//! ## Example
//!
//! ```
//! use hetpart_ml::{Dataset, ModelConfig, Pipeline};
//!
//! let mut data = Dataset::new(vec!["size".into(), "intensity".into()]);
//! // Tiny toy problem: two regimes split by problem size.
//! for i in 0..40 {
//!     let size = i as f64 * 1000.0;
//!     data.push(vec![size, 2.0], usize::from(i >= 20), i % 4);
//! }
//! let pipe = Pipeline::fit(&ModelConfig::Knn { k: 3 }, &data.x, &data.y, 2);
//! assert_eq!(pipe.predict(&[1_000.0, 2.0]), 0);
//! assert_eq!(pipe.predict(&[39_000.0, 2.0]), 1);
//! ```

pub mod cv;
pub mod dataset;
pub mod forest;
pub mod importance;
pub mod knn;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod scale;
pub mod svm;
pub mod tree;

pub use cv::{kfold_cv, leave_one_group_out, CvResult};
pub use dataset::Dataset;
pub use forest::{ForestConfig, RandomForest};
pub use importance::{permutation_importance, FeatureImportance};
pub use knn::Knn;
pub use metrics::{accuracy, confusion_matrix, geometric_mean};
pub use mlp::{Mlp, MlpConfig};
pub use model::{Model, ModelConfig, Pipeline};
pub use scale::StandardScaler;
pub use svm::{LinearSvm, SvmConfig};
pub use tree::{DecisionTree, TreeConfig};
