//! k-nearest-neighbour classifier (Euclidean distance).

use serde::{Deserialize, Serialize};

/// A fitted (memorized) k-NN classifier.
///
/// Expects its inputs to be scaled (see [`crate::scale::StandardScaler`]);
/// raw counts would let one feature dominate the distance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Knn {
    pub k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
    n_classes: usize,
}

impl Knn {
    /// Memorize the training set.
    pub fn fit(k: usize, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(x.len(), y.len());
        Self {
            k,
            x: x.to_vec(),
            y: y.to_vec(),
            n_classes,
        }
    }

    fn dist2(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Number of classes this classifier was fitted for.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Vote distribution over classes among the k nearest neighbours.
    pub fn predict_proba(&self, q: &[f64]) -> Vec<f64> {
        let mut d: Vec<(f64, usize)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(xi, &yi)| (Self::dist2(xi, q), yi))
            .collect();
        let k = self.k.min(d.len());
        d.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let mut votes = vec![0.0; self.n_classes];
        for &(_, yi) in &d[..k] {
            votes[yi] += 1.0;
        }
        for v in &mut votes {
            *v /= k as f64;
        }
        votes
    }

    /// Majority class among the k nearest neighbours (ties broken toward
    /// the lower class index).
    pub fn predict(&self, q: &[f64]) -> usize {
        let p = self.predict_proba(q);
        let mut best = 0;
        for (i, &v) in p.iter().enumerate() {
            if v > p[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_nn_memorizes_training_set() {
        let x = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]];
        let y = vec![0, 1, 2];
        let m = Knn::fit(1, &x, &y, 3);
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(m.predict(xi), yi);
        }
    }

    #[test]
    fn k3_votes() {
        // Two class-0 points near the query outvote one closer class-1.
        let x = vec![vec![0.1], vec![-0.1], vec![0.0], vec![9.0]];
        let y = vec![0, 0, 1, 1];
        let m = Knn::fit(3, &x, &y, 2);
        assert_eq!(m.predict(&[0.01]), 0);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 1];
        let m = Knn::fit(10, &x, &y, 2);
        // Vote is split 50/50; tie goes to class 0.
        assert_eq!(m.predict(&[0.5]), 0);
    }

    #[test]
    fn proba_is_vote_fraction() {
        let x = vec![vec![0.0], vec![0.2], vec![0.4], vec![10.0]];
        let y = vec![0, 0, 1, 1];
        let m = Knn::fit(3, &x, &y, 2);
        let p = m.predict_proba(&[0.1]);
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        Knn::fit(0, &[vec![0.0]], &[0], 1);
    }
}
