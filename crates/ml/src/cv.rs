//! Cross-validation: k-fold and leave-one-group-out.
//!
//! The paper's deployment scenario is "a *new* OpenCL program is provided
//! to the analyzer" — the model has never seen it. Leave-one-group-out
//! (group = benchmark program) reproduces that setting exactly; all
//! headline numbers in the evaluation use it.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::metrics::accuracy;
use crate::model::{ModelConfig, Pipeline};

/// Result of a cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Accuracy per fold.
    pub fold_accuracies: Vec<f64>,
    /// Overall accuracy (weighted by fold size).
    pub accuracy: f64,
    /// For every dataset row: the label predicted by the model that did
    /// *not* see that row during training. `usize::MAX` for rows that were
    /// in folds that could not be evaluated (never happens with valid
    /// input).
    pub predictions: Vec<usize>,
}

/// Deterministically split `n` row indices into `k` folds.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(n >= k, "need at least one row per fold");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds = vec![Vec::new(); k];
    for (i, row) in idx.into_iter().enumerate() {
        folds[i % k].push(row);
    }
    folds
}

/// Standard k-fold cross-validation.
pub fn kfold_cv(config: &ModelConfig, data: &Dataset, k: usize, seed: u64) -> CvResult {
    let folds = kfold_indices(data.len(), k, seed);
    let n_classes = data.n_classes();
    let mut predictions = vec![usize::MAX; data.len()];
    let mut fold_accuracies = Vec::with_capacity(k);
    for fold in &folds {
        let train_idx: Vec<usize> = (0..data.len()).filter(|i| !fold.contains(i)).collect();
        let train = data.subset(&train_idx);
        let pipe = Pipeline::fit(config, &train.x, &train.y, n_classes);
        let mut y_true = Vec::new();
        let mut y_pred = Vec::new();
        for &i in fold {
            let p = pipe.predict(&data.x[i]);
            predictions[i] = p;
            y_true.push(data.y[i]);
            y_pred.push(p);
        }
        fold_accuracies.push(accuracy(&y_true, &y_pred));
    }
    let acc = accuracy(&data.y, &predictions);
    CvResult {
        fold_accuracies,
        accuracy: acc,
        predictions,
    }
}

/// Leave-one-group-out cross-validation: for each distinct group, train on
/// every other group and predict the held-out rows.
///
/// Returns per-row predictions (each made by a model that never saw the
/// row's group) and per-group accuracies in `group_ids()` order.
pub fn leave_one_group_out(config: &ModelConfig, data: &Dataset) -> CvResult {
    let groups = data.group_ids();
    assert!(
        groups.len() >= 2,
        "leave-one-group-out needs at least two groups"
    );
    let n_classes = data.n_classes();
    let mut predictions = vec![usize::MAX; data.len()];
    let mut fold_accuracies = Vec::with_capacity(groups.len());
    for &g in &groups {
        let (train, _) = data.split_by_group(g);
        let pipe = Pipeline::fit(config, &train.x, &train.y, n_classes);
        let mut y_true = Vec::new();
        let mut y_pred = Vec::new();
        for (i, pred_slot) in predictions.iter_mut().enumerate() {
            if data.groups[i] == g {
                let p = pipe.predict(&data.x[i]);
                *pred_slot = p;
                y_true.push(data.y[i]);
                y_pred.push(p);
            }
        }
        fold_accuracies.push(accuracy(&y_true, &y_pred));
    }
    let acc = accuracy(&data.y, &predictions);
    CvResult {
        fold_accuracies,
        accuracy: acc,
        predictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use crate::tree::TreeConfig;

    /// Dataset where the label is a simple threshold on feature 0, split
    /// into 4 groups.
    fn learnable() -> Dataset {
        let mut d = Dataset::new(vec!["f0".into(), "f1".into()]);
        for i in 0..80 {
            let v = i as f64;
            d.push(vec![v, (i % 5) as f64], usize::from(v >= 40.0), i % 4);
        }
        d
    }

    #[test]
    fn kfold_indices_partition_rows() {
        let folds = kfold_indices(23, 5, 9);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        assert!(folds.iter().all(|f| !f.is_empty()));
    }

    #[test]
    fn kfold_cv_learns_learnable_data() {
        let d = learnable();
        let r = kfold_cv(&ModelConfig::Tree(TreeConfig::default()), &d, 5, 3);
        assert!(r.accuracy > 0.9, "accuracy {}", r.accuracy);
        assert_eq!(r.fold_accuracies.len(), 5);
        assert!(r.predictions.iter().all(|&p| p != usize::MAX));
    }

    #[test]
    fn logo_cv_holds_out_whole_groups() {
        let d = learnable();
        let r = leave_one_group_out(&ModelConfig::Tree(TreeConfig::default()), &d);
        assert_eq!(r.fold_accuracies.len(), 4);
        assert!(r.accuracy > 0.9, "accuracy {}", r.accuracy);
    }

    #[test]
    fn logo_predictions_never_use_own_group() {
        // A dataset where each group has a *different* constant label and
        // a constant feature: a model trained without the group cannot
        // know its label, so per-group accuracy must be 0.
        let mut d = Dataset::new(vec!["f".into()]);
        for g in 0..3 {
            for _ in 0..5 {
                d.push(vec![g as f64], g, g);
            }
        }
        let r = leave_one_group_out(&ModelConfig::Knn { k: 1 }, &d);
        assert!(
            r.accuracy < 0.01,
            "a leaky implementation would score perfectly, got {}",
            r.accuracy
        );
    }

    #[test]
    fn deterministic_kfold() {
        let a = kfold_indices(50, 5, 7);
        let b = kfold_indices(50, 5, 7);
        assert_eq!(a, b);
        let c = kfold_indices(50, 5, 8);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least two groups")]
    fn logo_needs_two_groups() {
        let mut d = Dataset::new(vec!["f".into()]);
        d.push(vec![0.0], 0, 7);
        leave_one_group_out(&ModelConfig::Knn { k: 1 }, &d);
    }
}
