//! Classification metrics.

/// Fraction of matching labels. Empty input counts as zero accuracy.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let hits = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    hits as f64 / y_true.len() as f64
}

/// `n_classes × n_classes` confusion matrix; `m[t][p]` counts rows with
/// true label `t` predicted as `p`.
pub fn confusion_matrix(n_classes: usize, y_true: &[usize], y_pred: &[usize]) -> Vec<Vec<usize>> {
    assert_eq!(y_true.len(), y_pred.len());
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        m[t][p] += 1;
    }
    m
}

/// Geometric mean of a slice of positive values (used for speedup
/// summaries, the standard aggregation for ratios).
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean needs positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    fn confusion_matrix_shape_and_counts() {
        let m = confusion_matrix(3, &[0, 1, 2, 1], &[0, 2, 2, 1]);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][2], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][2], 1);
        assert_eq!(m.iter().flatten().sum::<usize>(), 4);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }
}
