//! A multi-layer perceptron classifier trained with backpropagation.
//!
//! This is the paper family's model of choice (the Insieme framework used
//! artificial neural networks for its task-partitioning predictor). The
//! implementation is a plain, dependency-free MLP: tanh hidden layers,
//! softmax output, cross-entropy loss, mini-batch SGD with momentum and L2
//! regularization, fully deterministic for a fixed seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`Mlp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden layer widths (e.g. `[32, 16]`).
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// L2 weight decay.
    pub l2: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// PRNG seed (initialization + shuffling).
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![32, 16],
            epochs: 300,
            lr: 0.02,
            momentum: 0.9,
            l2: 1e-4,
            batch_size: 16,
            seed: 42,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    /// Row-major `out × in` weights.
    w: Vec<f64>,
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        // Xavier/Glorot uniform initialization.
        let bound = (6.0 / (n_in + n_out) as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let z: f64 = row.iter().zip(x).map(|(w, x)| w * x).sum::<f64>() + self.b[o];
            out.push(z);
        }
    }
}

/// The trained model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    pub config: MlpConfig,
    layers: Vec<Layer>,
    n_classes: usize,
    dim: usize,
}

fn softmax(z: &mut [f64]) {
    let m = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in z.iter_mut() {
        *v = (*v - m).exp();
        sum += *v;
    }
    for v in z.iter_mut() {
        *v /= sum;
    }
}

impl Mlp {
    /// Train a classifier on `x` / dense labels `y` with `n_classes`
    /// classes.
    ///
    /// # Panics
    /// Panics on empty data, inconsistent dimensions, or labels outside
    /// `0..n_classes`.
    #[allow(clippy::needless_range_loop)] // index loops mirror the math
    pub fn fit(config: MlpConfig, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Self {
        assert!(!x.is_empty(), "cannot train on an empty dataset");
        assert_eq!(x.len(), y.len());
        assert!(n_classes >= 1);
        assert!(y.iter().all(|&l| l < n_classes), "label out of range");
        let dim = x[0].len();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Build layers: dim -> hidden... -> n_classes.
        let mut sizes = vec![dim];
        sizes.extend(&config.hidden);
        sizes.push(n_classes);
        let mut layers: Vec<Layer> = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();

        // Momentum buffers.
        let mut vel_w: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut vel_b: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

        let n = x.len();
        let mut order: Vec<usize> = (0..n).collect();
        let batch = config.batch_size.max(1);

        // Per-layer activation storage (input + post-activation of each
        // layer).
        for _epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch) {
                // Accumulate gradients over the batch.
                let mut grad_w: Vec<Vec<f64>> =
                    layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
                let mut grad_b: Vec<Vec<f64>> =
                    layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

                for &i in chunk {
                    // Forward pass, keeping activations.
                    let mut acts: Vec<Vec<f64>> = Vec::with_capacity(layers.len() + 1);
                    acts.push(x[i].clone());
                    for (li, layer) in layers.iter().enumerate() {
                        let mut z = Vec::new();
                        layer.forward(acts.last().expect("non-empty"), &mut z);
                        if li + 1 < layers.len() {
                            for v in z.iter_mut() {
                                *v = v.tanh();
                            }
                        } else {
                            softmax(&mut z);
                        }
                        acts.push(z);
                    }

                    // Backward pass. delta starts as softmax − one-hot.
                    let mut delta: Vec<f64> = acts.last().expect("non-empty").clone();
                    delta[y[i]] -= 1.0;
                    for li in (0..layers.len()).rev() {
                        let input = &acts[li];
                        {
                            let gw = &mut grad_w[li];
                            let gb = &mut grad_b[li];
                            for o in 0..layers[li].n_out {
                                gb[o] += delta[o];
                                let row = &mut gw[o * layers[li].n_in..(o + 1) * layers[li].n_in];
                                for (g, xi) in row.iter_mut().zip(input) {
                                    *g += delta[o] * xi;
                                }
                            }
                        }
                        if li > 0 {
                            // Propagate through W^T and the tanh derivative.
                            let l = &layers[li];
                            let mut next = vec![0.0; l.n_in];
                            for o in 0..l.n_out {
                                let row = &l.w[o * l.n_in..(o + 1) * l.n_in];
                                for (nv, w) in next.iter_mut().zip(row) {
                                    *nv += delta[o] * w;
                                }
                            }
                            for (nv, a) in next.iter_mut().zip(&acts[li]) {
                                *nv *= 1.0 - a * a;
                            }
                            delta = next;
                        }
                    }
                }

                // SGD with momentum + L2.
                let scale = config.lr / chunk.len() as f64;
                for li in 0..layers.len() {
                    for (j, g) in grad_w[li].iter().enumerate() {
                        let reg = config.l2 * layers[li].w[j];
                        vel_w[li][j] = config.momentum * vel_w[li][j] - scale * (g + reg);
                        layers[li].w[j] += vel_w[li][j];
                    }
                    for (j, g) in grad_b[li].iter().enumerate() {
                        vel_b[li][j] = config.momentum * vel_b[li][j] - scale * g;
                        layers[li].b[j] += vel_b[li][j];
                    }
                }
            }
        }
        Self {
            config,
            layers,
            n_classes,
            dim,
        }
    }

    /// Class probabilities for one feature row.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if li + 1 < self.layers.len() {
                for v in next.iter_mut() {
                    *v = v.tanh();
                }
            } else {
                softmax(&mut next);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Most likely class for one feature row.
    pub fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Number of classes the model was trained with.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..25 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                x.push(vec![a, b]);
                y.push(usize::from((a != b) as u8 == 1));
            }
        }
        (x, y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let cfg = MlpConfig {
            hidden: vec![8],
            epochs: 400,
            ..Default::default()
        };
        let m = Mlp::fit(cfg, &x, &y, 2);
        for (xi, yi) in x.iter().zip(&y) {
            assert_eq!(m.predict(xi), *yi, "xor({xi:?})");
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = xor_data();
        let m = Mlp::fit(
            MlpConfig {
                epochs: 10,
                ..Default::default()
            },
            &x,
            &y,
            2,
        );
        let p = m.predict_proba(&[0.5, 0.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = xor_data();
        let cfg = MlpConfig {
            epochs: 50,
            ..Default::default()
        };
        let a = Mlp::fit(cfg.clone(), &x, &y, 2);
        let b = Mlp::fit(cfg, &x, &y, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = xor_data();
        let a = Mlp::fit(
            MlpConfig {
                epochs: 20,
                seed: 1,
                ..Default::default()
            },
            &x,
            &y,
            2,
        );
        let b = Mlp::fit(
            MlpConfig {
                epochs: 20,
                seed: 2,
                ..Default::default()
            },
            &x,
            &y,
            2,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn multiclass_blobs() {
        // Three well-separated clusters.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let centers = [(-4.0, 0.0), (4.0, 0.0), (0.0, 5.0)];
        let mut rng = StdRng::seed_from_u64(7);
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..40 {
                x.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0),
                ]);
                y.push(c);
            }
        }
        let m = Mlp::fit(
            MlpConfig {
                hidden: vec![16],
                epochs: 200,
                ..Default::default()
            },
            &x,
            &y,
            3,
        );
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| m.predict(xi) == yi)
            .count();
        assert!(
            correct as f64 / x.len() as f64 > 0.95,
            "accuracy {correct}/{}",
            x.len()
        );
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let (x, y) = xor_data();
        let m = Mlp::fit(
            MlpConfig {
                epochs: 100,
                ..Default::default()
            },
            &x,
            &y,
            2,
        );
        let js = serde_json::to_string(&m).unwrap();
        let back: Mlp = serde_json::from_str(&js).unwrap();
        for xi in &x {
            assert_eq!(m.predict(xi), back.predict(xi));
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        Mlp::fit(MlpConfig::default(), &[vec![0.0]], &[5], 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_bad_predict_dim() {
        let (x, y) = xor_data();
        let m = Mlp::fit(
            MlpConfig {
                epochs: 1,
                ..Default::default()
            },
            &x,
            &y,
            2,
        );
        m.predict(&[1.0, 2.0, 3.0]);
    }
}
