//! Linear SVM: one-vs-rest hinge loss trained by SGD.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`LinearSvm`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    pub epochs: usize,
    pub lr: f64,
    /// L2 regularization strength.
    pub lambda: f64,
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            lr: 0.05,
            lambda: 1e-4,
            seed: 42,
        }
    }
}

/// One-vs-rest linear SVM classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    pub config: SvmConfig,
    /// One (w, b) per class.
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
    dim: usize,
}

impl LinearSvm {
    /// Train on `x`/`y` with dense labels in `0..n_classes`. Expects
    /// scaled features.
    pub fn fit(config: SvmConfig, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Self {
        assert!(!x.is_empty(), "cannot train on an empty dataset");
        assert_eq!(x.len(), y.len());
        assert!(y.iter().all(|&l| l < n_classes), "label out of range");
        let dim = x[0].len();
        let mut weights = vec![vec![0.0; dim]; n_classes];
        let mut biases = vec![0.0; n_classes];
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..x.len()).collect();

        // Subgradient SGD on hinge + L2 does not converge with a constant
        // step — it cycles, and the final iterate depends on the last
        // epoch's shuffle. Decay the step per epoch and average the tail
        // iterates (Polyak averaging) so training lands on the regularized
        // minimizer regardless of shuffle order.
        let avg_from = config.epochs - config.epochs / 2;
        let mut avg_weights = vec![vec![0.0; dim]; n_classes];
        let mut avg_biases = vec![0.0; n_classes];
        let mut avg_count = 0u32;

        for epoch in 0..config.epochs {
            let lr = config.lr / (1.0 + 0.05 * epoch as f64);
            order.shuffle(&mut rng);
            for &i in &order {
                for c in 0..n_classes {
                    let target = if y[i] == c { 1.0 } else { -1.0 };
                    let margin = target * (dot(&weights[c], &x[i]) + biases[c]);
                    // Subgradient step on hinge + L2.
                    let w = &mut weights[c];
                    if margin < 1.0 {
                        for (wj, xj) in w.iter_mut().zip(&x[i]) {
                            *wj += lr * (target * xj - config.lambda * *wj);
                        }
                        biases[c] += lr * target;
                    } else {
                        for wj in w.iter_mut() {
                            *wj -= lr * config.lambda * *wj;
                        }
                    }
                }
            }
            if epoch >= avg_from {
                for (aw, w) in avg_weights.iter_mut().zip(&weights) {
                    for (a, v) in aw.iter_mut().zip(w) {
                        *a += v;
                    }
                }
                for (ab, b) in avg_biases.iter_mut().zip(&biases) {
                    *ab += b;
                }
                avg_count += 1;
            }
        }
        if avg_count > 0 {
            let inv = 1.0 / f64::from(avg_count);
            for w in &mut avg_weights {
                for v in w.iter_mut() {
                    *v *= inv;
                }
            }
            for b in &mut avg_biases {
                *b *= inv;
            }
            weights = avg_weights;
            biases = avg_biases;
        }
        Self {
            config,
            weights,
            biases,
            dim,
        }
    }

    /// Per-class decision values (not probabilities).
    pub fn decision(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        self.weights
            .iter()
            .zip(&self.biases)
            .map(|(w, b)| dot(w, x) + b)
            .collect()
    }

    /// Number of classes this classifier was fitted for.
    pub fn n_classes(&self) -> usize {
        self.weights.len()
    }

    /// Class with the largest decision value.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.decision(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("at least one class")
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Separable by x0.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let v = i as f64 / 10.0 - 3.0;
            x.push(vec![v, (i % 7) as f64 / 7.0]);
            y.push(usize::from(v > 0.0));
        }
        (x, y)
    }

    #[test]
    fn separates_linear_data() {
        let (x, y) = linear_data();
        let m = LinearSvm::fit(SvmConfig::default(), &x, &y, 2);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| m.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn three_class_one_vs_rest() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..3usize {
            for j in 0..30 {
                x.push(vec![c as f64 * 3.0 + (j % 5) as f64 * 0.1, 0.0]);
                y.push(c);
            }
        }
        let m = LinearSvm::fit(SvmConfig::default(), &x, &y, 3);
        assert_eq!(m.predict(&[0.0, 0.0]), 0);
        assert_eq!(m.predict(&[3.0, 0.0]), 1);
        assert_eq!(m.predict(&[6.2, 0.0]), 2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = linear_data();
        let a = LinearSvm::fit(SvmConfig::default(), &x, &y, 2);
        let b = LinearSvm::fit(SvmConfig::default(), &x, &y, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn decision_has_one_value_per_class() {
        let (x, y) = linear_data();
        let m = LinearSvm::fit(
            SvmConfig {
                epochs: 5,
                ..Default::default()
            },
            &x,
            &y,
            2,
        );
        assert_eq!(m.decision(&x[0]).len(), 2);
    }
}
