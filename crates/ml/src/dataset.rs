//! Training datasets: feature matrices with class labels and group ids.

use serde::{Deserialize, Serialize};

/// A labelled dataset for classification.
///
/// `groups` carries the program id of each pattern so cross-validation can
/// hold out *whole programs* (the paper's deployment scenario: predict the
/// partitioning of a program the model has never seen).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows (all the same length).
    pub x: Vec<Vec<f64>>,
    /// Class label per row (dense, `0..n_classes`).
    pub y: Vec<usize>,
    /// Group id per row (e.g. benchmark-program index).
    pub groups: Vec<usize>,
    /// Feature names, length = feature dimension.
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Create an empty dataset with the given feature names.
    pub fn new(feature_names: Vec<String>) -> Self {
        Self {
            x: Vec::new(),
            y: Vec::new(),
            groups: Vec::new(),
            feature_names,
        }
    }

    /// Append one pattern.
    ///
    /// # Panics
    /// Panics if the feature length does not match the dataset.
    pub fn push(&mut self, features: Vec<f64>, label: usize, group: usize) {
        assert_eq!(
            features.len(),
            self.feature_names.len(),
            "feature vector length mismatch"
        );
        self.x.push(features);
        self.y.push(label);
        self.groups.push(group);
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the dataset holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of distinct classes (`max(y) + 1`, dense labels).
    pub fn n_classes(&self) -> usize {
        self.y.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Distinct group ids in first-appearance order.
    pub fn group_ids(&self) -> Vec<usize> {
        let mut seen = Vec::new();
        for &g in &self.groups {
            if !seen.contains(&g) {
                seen.push(g);
            }
        }
        seen
    }

    /// Split into (rows with `group != held_out`, rows with `group ==
    /// held_out`) — the leave-one-group-out partition.
    pub fn split_by_group(&self, held_out: usize) -> (Dataset, Dataset) {
        let mut train = Dataset::new(self.feature_names.clone());
        let mut test = Dataset::new(self.feature_names.clone());
        for i in 0..self.len() {
            let dst = if self.groups[i] == held_out {
                &mut test
            } else {
                &mut train
            };
            dst.push(self.x[i].clone(), self.y[i], self.groups[i]);
        }
        (train, test)
    }

    /// Select rows by index.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.feature_names.clone());
        for &i in idx {
            out.push(self.x[i].clone(), self.y[i], self.groups[i]);
        }
        out
    }

    /// Keep only the feature columns in `cols` (used by the feature
    /// ablation experiment).
    pub fn select_features(&self, cols: &[usize]) -> Dataset {
        let names = cols
            .iter()
            .map(|&c| self.feature_names[c].clone())
            .collect();
        let mut out = Dataset::new(names);
        for i in 0..self.len() {
            let row = cols.iter().map(|&c| self.x[i][c]).collect();
            out.push(row, self.y[i], self.groups[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        d.push(vec![1.0, 2.0], 0, 0);
        d.push(vec![3.0, 4.0], 1, 0);
        d.push(vec![5.0, 6.0], 2, 1);
        d.push(vec![7.0, 8.0], 1, 2);
        d
    }

    #[test]
    fn basic_accessors() {
        let d = sample();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.n_classes(), 3);
        assert_eq!(d.group_ids(), vec![0, 1, 2]);
        assert!(!d.is_empty());
    }

    #[test]
    fn split_by_group_partitions_rows() {
        let d = sample();
        let (train, test) = d.split_by_group(0);
        assert_eq!(train.len(), 2);
        assert_eq!(test.len(), 2);
        assert!(test.groups.iter().all(|&g| g == 0));
        assert!(train.groups.iter().all(|&g| g != 0));
    }

    #[test]
    fn subset_selects_rows() {
        let d = sample();
        let s = d.subset(&[0, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y, vec![0, 1]);
        assert_eq!(s.x[1], vec![7.0, 8.0]);
    }

    #[test]
    fn select_features_projects_columns() {
        let d = sample();
        let p = d.select_features(&[1]);
        assert_eq!(p.dim(), 1);
        assert_eq!(p.x[2], vec![6.0]);
        assert_eq!(p.feature_names, vec!["b".to_string()]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn push_rejects_wrong_dim() {
        let mut d = sample();
        d.push(vec![1.0], 0, 0);
    }
}
