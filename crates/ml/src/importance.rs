//! Permutation feature importance.
//!
//! Model-agnostic: the importance of a feature is the accuracy lost when
//! that feature's column is randomly permuted across the evaluation set
//! (breaking its relationship with the label while preserving its
//! marginal distribution).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::metrics::accuracy;
use crate::model::Pipeline;

/// Importance of one feature.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureImportance {
    pub feature: String,
    /// Baseline accuracy minus mean permuted accuracy (can be slightly
    /// negative for useless features).
    pub importance: f64,
}

/// Compute permutation importances of a fitted pipeline on `data`,
/// averaging over `repeats` permutations per feature. Results are sorted
/// by descending importance.
pub fn permutation_importance(
    pipeline: &Pipeline,
    data: &Dataset,
    repeats: usize,
    seed: u64,
) -> Vec<FeatureImportance> {
    assert!(
        !data.is_empty(),
        "cannot compute importance on an empty dataset"
    );
    assert!(repeats >= 1);
    let preds: Vec<usize> = data.x.iter().map(|r| pipeline.predict(r)).collect();
    let baseline = accuracy(&data.y, &preds);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.len();

    let mut out: Vec<FeatureImportance> = (0..data.dim())
        .map(|col| {
            let mut drop_sum = 0.0;
            for _ in 0..repeats {
                let mut perm: Vec<usize> = (0..n).collect();
                perm.shuffle(&mut rng);
                let preds: Vec<usize> = (0..n)
                    .map(|i| {
                        let mut row = data.x[i].clone();
                        row[col] = data.x[perm[i]][col];
                        pipeline.predict(&row)
                    })
                    .collect();
                drop_sum += baseline - accuracy(&data.y, &preds);
            }
            FeatureImportance {
                feature: data.feature_names[col].clone(),
                importance: drop_sum / repeats as f64,
            }
        })
        .collect();
    out.sort_by(|a, b| b.importance.total_cmp(&a.importance));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use crate::tree::TreeConfig;

    /// Label depends only on feature 0; feature 1 is noise.
    fn data() -> Dataset {
        let mut d = Dataset::new(vec!["signal".into(), "noise".into()]);
        for i in 0..120 {
            let x0 = i as f64;
            let x1 = ((i * 37) % 17) as f64;
            d.push(vec![x0, x1], usize::from(x0 >= 60.0), i % 4);
        }
        d
    }

    #[test]
    fn signal_feature_dominates() {
        let d = data();
        let p = Pipeline::fit(&ModelConfig::Tree(TreeConfig::default()), &d.x, &d.y, 2);
        let imp = permutation_importance(&p, &d, 3, 7);
        assert_eq!(imp[0].feature, "signal");
        assert!(imp[0].importance > 0.2, "{imp:?}");
        let noise = imp.iter().find(|f| f.feature == "noise").unwrap();
        assert!(noise.importance.abs() < 0.1, "{imp:?}");
    }

    #[test]
    fn importances_are_deterministic_for_fixed_seed() {
        let d = data();
        let p = Pipeline::fit(&ModelConfig::Knn { k: 3 }, &d.x, &d.y, 2);
        let a = permutation_importance(&p, &d, 2, 5);
        let b = permutation_importance(&p, &d, 2, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn output_covers_every_feature_once() {
        let d = data();
        let p = Pipeline::fit(&ModelConfig::Knn { k: 1 }, &d.x, &d.y, 2);
        let imp = permutation_importance(&p, &d, 1, 1);
        assert_eq!(imp.len(), 2);
    }
}
