//! Random forest: bagged decision trees with per-split feature sampling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::tree::{DecisionTree, TreeConfig};

/// Hyper-parameters for [`RandomForest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    pub n_trees: usize,
    pub tree: TreeConfig,
    /// Features sampled per split; `None` ⇒ `ceil(sqrt(dim))`.
    pub max_features: Option<usize>,
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 50,
            tree: TreeConfig::default(),
            max_features: None,
            seed: 42,
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    pub config: ForestConfig,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Train on `x`/`y` with dense labels in `0..n_classes`.
    pub fn fit(config: ForestConfig, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Self {
        assert!(!x.is_empty(), "cannot train on an empty dataset");
        let dim = x[0].len();
        let m = config
            .max_features
            .unwrap_or_else(|| (dim as f64).sqrt().ceil() as usize);
        let m = m.clamp(1, dim);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = x.len();
        let mut trees = Vec::with_capacity(config.n_trees);
        let all: Vec<usize> = (0..dim).collect();
        for _ in 0..config.n_trees {
            // Bootstrap sample.
            let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let bx: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
            let by: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
            // Per-split feature sampling, driven by the shared RNG.
            let mut tree_rng = StdRng::seed_from_u64(rng.gen());
            let mut sampler = |_depth: usize| -> Vec<usize> {
                let mut feats = all.clone();
                feats.shuffle(&mut tree_rng);
                feats.truncate(m);
                feats
            };
            trees.push(DecisionTree::fit_with_feature_sampler(
                config.tree,
                &bx,
                &by,
                n_classes,
                &mut sampler,
            ));
        }
        Self {
            config,
            trees,
            n_classes,
        }
    }

    /// Number of classes this forest was fitted for.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Soft vote: summed leaf distributions, normalized.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.n_classes];
        for t in &self.trees {
            let counts = t.leaf_counts(x);
            let total: usize = counts.iter().sum();
            if total == 0 {
                continue;
            }
            for (a, &c) in acc.iter_mut().zip(counts) {
                *a += c as f64 / total as f64;
            }
        }
        let s: f64 = acc.iter().sum();
        if s > 0.0 {
            for a in &mut acc {
                *a /= s;
            }
        }
        acc
    }

    /// Majority-vote prediction.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predict_proba(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Number of trees actually trained.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_blobs(seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..3usize {
            let cx = c as f64 * 4.0;
            for _ in 0..50 {
                x.push(vec![
                    cx + rng.gen_range(-1.5..1.5),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0), // noise feature
                ]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn classifies_blobs_well() {
        let (x, y) = noisy_blobs(3);
        let f = RandomForest::fit(
            ForestConfig {
                n_trees: 25,
                ..Default::default()
            },
            &x,
            &y,
            3,
        );
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| f.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = noisy_blobs(5);
        let cfg = ForestConfig {
            n_trees: 10,
            ..Default::default()
        };
        let a = RandomForest::fit(cfg.clone(), &x, &y, 3);
        let b = RandomForest::fit(cfg, &x, &y, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn proba_sums_to_one() {
        let (x, y) = noisy_blobs(9);
        let f = RandomForest::fit(
            ForestConfig {
                n_trees: 7,
                ..Default::default()
            },
            &x,
            &y,
            3,
        );
        let p = f.predict_proba(&x[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(f.num_trees(), 7);
    }

    #[test]
    fn single_tree_forest_matches_bagging_behaviour() {
        let (x, y) = noisy_blobs(11);
        let f = RandomForest::fit(
            ForestConfig {
                n_trees: 1,
                ..Default::default()
            },
            &x,
            &y,
            3,
        );
        assert_eq!(f.num_trees(), 1);
        // It should still classify most of the training set.
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| f.predict(xi) == yi)
            .count();
        assert!(acc * 2 > x.len());
    }
}
