//! A unified interface over all classifier families, plus the
//! scaler+model pipeline used everywhere in the framework.

use serde::{Deserialize, Serialize};

use crate::forest::{ForestConfig, RandomForest};
use crate::knn::Knn;
use crate::mlp::{Mlp, MlpConfig};
use crate::scale::StandardScaler;
use crate::svm::{LinearSvm, SvmConfig};
use crate::tree::{DecisionTree, TreeConfig};

/// Which model family to train, with its hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelConfig {
    /// The paper family's choice: an artificial neural network.
    Mlp(MlpConfig),
    Tree(TreeConfig),
    Forest(ForestConfig),
    Knn {
        k: usize,
    },
    Svm(SvmConfig),
}

impl ModelConfig {
    /// Display name for report tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelConfig::Mlp(_) => "ANN (MLP)",
            ModelConfig::Tree(_) => "Decision Tree",
            ModelConfig::Forest(_) => "Random Forest",
            ModelConfig::Knn { .. } => "k-NN",
            ModelConfig::Svm(_) => "Linear SVM",
        }
    }

    /// Whether the family is distance/gradient based and therefore needs
    /// standardized inputs.
    pub fn needs_scaling(&self) -> bool {
        !matches!(self, ModelConfig::Tree(_) | ModelConfig::Forest(_))
    }

    /// Default configuration of every family, for model-comparison tables.
    pub fn all_defaults() -> Vec<ModelConfig> {
        vec![
            ModelConfig::Mlp(MlpConfig::default()),
            ModelConfig::Forest(ForestConfig::default()),
            ModelConfig::Tree(TreeConfig::default()),
            ModelConfig::Knn { k: 5 },
            ModelConfig::Svm(SvmConfig::default()),
        ]
    }
}

/// A trained model of any family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Model {
    Mlp(Mlp),
    Tree(DecisionTree),
    Forest(RandomForest),
    Knn(Knn),
    Svm(LinearSvm),
}

impl Model {
    /// Predict the class of one (already scaled, if applicable) row.
    pub fn predict(&self, x: &[f64]) -> usize {
        match self {
            Model::Mlp(m) => m.predict(x),
            Model::Tree(m) => m.predict(x),
            Model::Forest(m) => m.predict(x),
            Model::Knn(m) => m.predict(x),
            Model::Svm(m) => m.predict(x),
        }
    }

    /// Number of classes this model was fitted for. Every prediction is a
    /// dense label in `0..n_classes()`.
    pub fn n_classes(&self) -> usize {
        match self {
            Model::Mlp(m) => m.n_classes(),
            Model::Tree(m) => m.n_classes(),
            Model::Forest(m) => m.n_classes(),
            Model::Knn(m) => m.n_classes(),
            Model::Svm(m) => m.n_classes(),
        }
    }
}

/// Scaler + model: the deployable predictor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    pub scaler: Option<StandardScaler>,
    pub model: Model,
}

impl Pipeline {
    /// Fit the configured family on raw (unscaled) features.
    ///
    /// # Panics
    /// Panics on empty data or labels outside `0..n_classes` (programming
    /// errors in the training pipeline).
    pub fn fit(config: &ModelConfig, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Self {
        let (scaler, xs): (Option<StandardScaler>, Vec<Vec<f64>>) = if config.needs_scaling() {
            let sc = StandardScaler::fit(x);
            let xs = sc.transform(x);
            (Some(sc), xs)
        } else {
            (None, x.to_vec())
        };
        let model = match config {
            ModelConfig::Mlp(c) => Model::Mlp(Mlp::fit(c.clone(), &xs, y, n_classes)),
            ModelConfig::Tree(c) => Model::Tree(DecisionTree::fit(*c, &xs, y, n_classes)),
            ModelConfig::Forest(c) => {
                Model::Forest(RandomForest::fit(c.clone(), &xs, y, n_classes))
            }
            ModelConfig::Knn { k } => Model::Knn(Knn::fit(*k, &xs, y, n_classes)),
            ModelConfig::Svm(c) => Model::Svm(LinearSvm::fit(c.clone(), &xs, y, n_classes)),
        };
        Self { scaler, model }
    }

    /// Number of classes the underlying model was fitted for.
    pub fn n_classes(&self) -> usize {
        self.model.n_classes()
    }

    /// Predict the class of one raw feature row.
    pub fn predict(&self, x: &[f64]) -> usize {
        match &self.scaler {
            Some(sc) => {
                let mut row = x.to_vec();
                sc.transform_row(&mut row);
                self.model.predict(&row)
            }
            None => self.model.predict(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Feature 0 is informative but on a huge scale; feature 1 is noise
        // on a tiny scale. Scaling matters for distance/gradient models.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let c = usize::from(i >= 30);
            x.push(vec![
                c as f64 * 1e6 + (i % 10) as f64 * 1e4,
                (i % 3) as f64 * 0.01,
            ]);
            y.push(c);
        }
        (x, y)
    }

    #[test]
    fn every_family_fits_and_predicts() {
        let (x, y) = blobs();
        for cfg in ModelConfig::all_defaults() {
            let p = Pipeline::fit(&cfg, &x, &y, 2);
            let acc = x
                .iter()
                .zip(&y)
                .filter(|(xi, &yi)| p.predict(xi) == yi)
                .count() as f64
                / x.len() as f64;
            assert!(acc > 0.9, "{} accuracy {acc}", cfg.name());
        }
    }

    #[test]
    fn scaling_flags_are_correct() {
        assert!(ModelConfig::Mlp(MlpConfig::default()).needs_scaling());
        assert!(ModelConfig::Knn { k: 3 }.needs_scaling());
        assert!(ModelConfig::Svm(SvmConfig::default()).needs_scaling());
        assert!(!ModelConfig::Tree(TreeConfig::default()).needs_scaling());
        assert!(!ModelConfig::Forest(ForestConfig::default()).needs_scaling());
    }

    #[test]
    fn pipeline_serde_roundtrip_preserves_predictions() {
        let (x, y) = blobs();
        let p = Pipeline::fit(&ModelConfig::Knn { k: 3 }, &x, &y, 2);
        let js = serde_json::to_string(&p).unwrap();
        let back: Pipeline = serde_json::from_str(&js).unwrap();
        for xi in &x {
            assert_eq!(p.predict(xi), back.predict(xi));
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = ModelConfig::all_defaults()
            .iter()
            .map(|c| c.name())
            .collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), 5);
        assert_eq!(dedup.len(), 5);
    }
}
