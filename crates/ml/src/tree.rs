//! CART decision-tree classifier (Gini impurity, axis-aligned splits).

use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_split: usize,
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 1,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Class-count distribution at the leaf.
        counts: Vec<usize>,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// `x[feature] <= threshold` goes left.
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    pub config: TreeConfig,
    root: Node,
    n_classes: usize,
}

fn gini(counts: &[usize]) -> f64 {
    let n: usize = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
}

fn class_counts(y: &[usize], idx: &[usize], n_classes: usize) -> Vec<usize> {
    let mut c = vec![0; n_classes];
    for &i in idx {
        c[y[i]] += 1;
    }
    c
}

impl DecisionTree {
    /// Fit a tree. Feature subsets per split can be restricted via
    /// [`DecisionTree::fit_with_feature_sampler`] (used by the random
    /// forest); this variant considers all features.
    pub fn fit(config: TreeConfig, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Self {
        let all: Vec<usize> = (0..x.first().map_or(0, |r| r.len())).collect();
        Self::fit_with_feature_sampler(config, x, y, n_classes, &mut |_| all.clone())
    }

    /// Fit a tree, asking `sampler` for the candidate feature set at each
    /// split (it receives the node depth).
    pub fn fit_with_feature_sampler(
        config: TreeConfig,
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        sampler: &mut dyn FnMut(usize) -> Vec<usize>,
    ) -> Self {
        assert!(!x.is_empty(), "cannot train on an empty dataset");
        assert_eq!(x.len(), y.len());
        assert!(y.iter().all(|&l| l < n_classes), "label out of range");
        let idx: Vec<usize> = (0..x.len()).collect();
        let root = Self::build(&config, x, y, n_classes, &idx, 0, sampler);
        Self {
            config,
            root,
            n_classes,
        }
    }

    fn build(
        cfg: &TreeConfig,
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        idx: &[usize],
        depth: usize,
        sampler: &mut dyn FnMut(usize) -> Vec<usize>,
    ) -> Node {
        let counts = class_counts(y, idx, n_classes);
        let node_gini = gini(&counts);
        if depth >= cfg.max_depth || idx.len() < cfg.min_samples_split || node_gini == 0.0 {
            return Node::Leaf { counts };
        }

        // Find the best (feature, threshold) by exhaustive scan over the
        // sampled features and the sorted unique values.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, thr, score)
        for f in sampler(depth) {
            let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
            vals.sort_by(f64::total_cmp);
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            // Candidate thresholds: midpoints between consecutive values.
            for w in vals.windows(2) {
                let thr = (w[0] + w[1]) / 2.0;
                let mut lc = vec![0usize; n_classes];
                let mut rc = vec![0usize; n_classes];
                for &i in idx {
                    if x[i][f] <= thr {
                        lc[y[i]] += 1;
                    } else {
                        rc[y[i]] += 1;
                    }
                }
                let ln: usize = lc.iter().sum();
                let rn: usize = rc.iter().sum();
                if ln < cfg.min_samples_leaf || rn < cfg.min_samples_leaf {
                    continue;
                }
                let score = (ln as f64 * gini(&lc) + rn as f64 * gini(&rc)) / idx.len() as f64;
                if best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((f, thr, score));
                }
            }
        }

        let Some((feature, threshold, score)) = best else {
            return Node::Leaf { counts };
        };
        if score >= node_gini {
            // No impurity reduction.
            return Node::Leaf { counts };
        }
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);
        let left = Self::build(cfg, x, y, n_classes, &left_idx, depth + 1, sampler);
        let right = Self::build(cfg, x, y, n_classes, &right_idx, depth + 1, sampler);
        Node::Split {
            feature,
            threshold,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Class-count distribution at the leaf `x` lands in.
    pub fn leaf_counts(&self, x: &[f64]) -> &[usize] {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { counts } => return counts,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Majority class at the leaf.
    pub fn predict(&self, x: &[f64]) -> usize {
        let counts = self.leaf_counts(x);
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .expect("non-empty counts")
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total number of nodes (for size sanity checks).
    pub fn num_nodes(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_axis_aligned_data_perfectly() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, (i * 7 % 11) as f64])
            .collect();
        let y: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let t = DecisionTree::fit(TreeConfig::default(), &x, &y, 2);
        for (xi, yi) in x.iter().zip(&y) {
            assert_eq!(t.predict(xi), *yi);
        }
        // The split threshold must separate 19.x: a shallow tree suffices.
        assert!(t.num_nodes() <= 7, "nodes = {}", t.num_nodes());
    }

    #[test]
    fn respects_max_depth() {
        // Random-ish labels force deep trees unless capped.
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..64).map(|i| ((i * 2654435761usize) >> 3) % 2).collect();
        let shallow = DecisionTree::fit(
            TreeConfig {
                max_depth: 2,
                ..Default::default()
            },
            &x,
            &y,
            2,
        );
        // Depth-2 binary tree has at most 7 nodes.
        assert!(shallow.num_nodes() <= 7);
    }

    #[test]
    fn pure_nodes_stop_splitting() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1, 1, 1];
        let t = DecisionTree::fit(TreeConfig::default(), &x, &y, 2);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.predict(&[99.0]), 1);
    }

    #[test]
    fn multiclass_splits() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let t = DecisionTree::fit(TreeConfig::default(), &x, &y, 3);
        assert_eq!(t.predict(&[5.0]), 0);
        assert_eq!(t.predict(&[15.0]), 1);
        assert_eq!(t.predict(&[25.0]), 2);
    }

    #[test]
    fn gini_is_zero_for_pure_and_max_for_uniform() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert!((gini(&[4, 4, 4, 4]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let x = vec![vec![0.0], vec![1.0], vec![5.0], vec![6.0]];
        let y = vec![0, 0, 1, 1];
        let t = DecisionTree::fit(TreeConfig::default(), &x, &y, 2);
        let js = serde_json::to_string(&t).unwrap();
        let back: DecisionTree = serde_json::from_str(&js).unwrap();
        assert_eq!(t, back);
    }
}
