//! Feature scaling.
//!
//! The feature vectors mix counts spanning many orders of magnitude
//! (work-items vs. divergence fractions), so every model except the trees
//! is fit on z-scored features.

use serde::{Deserialize, Serialize};

/// Per-column standardization to zero mean and unit variance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    pub mean: Vec<f64>,
    pub std: Vec<f64>,
}

impl StandardScaler {
    /// Fit the scaler on a feature matrix.
    ///
    /// Constant columns get `std = 1` so they transform to zero instead of
    /// NaN.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn fit(x: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "cannot fit a scaler on no data");
        let dim = x[0].len();
        let n = x.len() as f64;
        let mut mean = vec![0.0; dim];
        for row in x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for row in x {
            for ((v, m), x) in var.iter_mut().zip(&mean).zip(row) {
                *v += (x - m) * (x - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { mean, std }
    }

    /// Transform one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((x, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *x = (*x - m) / s;
        }
    }

    /// Transform a whole matrix (copies).
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter()
            .map(|row| {
                let mut r = row.clone();
                self.transform_row(&mut r);
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let x = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let sc = StandardScaler::fit(&x);
        let t = sc.transform(&x);
        for c in 0..2 {
            let mean: f64 = t.iter().map(|r| r[c]).sum::<f64>() / 3.0;
            let var: f64 = t.iter().map(|r| r[c] * r[c]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12, "column {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "column {c} var {var}");
        }
    }

    #[test]
    fn constant_columns_map_to_zero() {
        let x = vec![vec![7.0], vec![7.0], vec![7.0]];
        let sc = StandardScaler::fit(&x);
        let t = sc.transform(&x);
        assert!(t.iter().all(|r| r[0] == 0.0));
    }

    #[test]
    fn roundtrips_serde() {
        let sc = StandardScaler::fit(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let js = serde_json::to_string(&sc).unwrap();
        let back: StandardScaler = serde_json::from_str(&js).unwrap();
        assert_eq!(sc, back);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        StandardScaler::fit(&[]);
    }
}
