//! Deterministic device fault injection — the chaos-engineering half of
//! the simulated platform.
//!
//! A [`FaultPlan`] describes, per device, *what goes wrong and when*:
//! transient launch failures at a fixed rate, permanent device death at a
//! given launch ordinal, a throughput slowdown factor, or an injected
//! panic (a driver crash taking the calling worker down with it). Every
//! decision is a pure function of `(seed, device, launch ordinal, kernel
//! fingerprint)` — no RNG state, no wall clock — so a chaos run under a
//! given seed reproduces the same fault sequence bit for bit, launch for
//! launch. That determinism is what lets the chaos suite assert that a
//! faulted run's *outputs* equal the fault-free run's and that a re-run
//! reproduces identical retry/re-plan statistics.
//!
//! [`FaultState`] is the runtime half: it owns the per-device launch
//! counters (atomics; a "launch" is one device receiving one chunk) and
//! the sticky death flags, and answers [`FaultState::verdict`] for each
//! chunk the executor is about to run. The state is shared behind an
//! `Arc` by every executor clone of a worker pool, so the fault timeline
//! is global to the service, not per worker.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::device::DeviceId;
use crate::machine::Machine;

/// What goes wrong on one device. All triggers compose: a device can be
/// slowed down, throw transients *and* die later; death wins once its
/// ordinal is reached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceFaults {
    /// Index of the device within the machine.
    pub device: usize,
    /// Probability in `[0, 1]` that any given launch on this device fails
    /// transiently (recoverable by retrying). Decided per launch ordinal
    /// by the seeded hash, so the failing ordinals are fixed per seed.
    pub transient_rate: f64,
    /// Per-device launch ordinal (0-based) at which the device dies
    /// permanently; every launch from that ordinal on fails terminally.
    pub dies_at_launch: Option<u64>,
    /// Per-device launch ordinal whose launch *panics* instead of
    /// returning an error — simulating a driver crash in the middle of a
    /// worker's job. Fires once.
    pub panics_at_launch: Option<u64>,
    /// Multiplier (≥ 1) applied to the simulated time of every successful
    /// launch on this device — a degraded (thermally throttled, shared)
    /// device that still answers.
    pub slowdown: f64,
    /// When set, every trigger above applies only to launches of the
    /// kernel with this fingerprint (other kernels see a healthy device).
    pub only_fingerprint: Option<u64>,
}

impl DeviceFaults {
    /// A healthy-device spec for `device` — useful as a builder base.
    pub fn none(device: usize) -> Self {
        Self {
            device,
            transient_rate: 0.0,
            dies_at_launch: None,
            panics_at_launch: None,
            slowdown: 1.0,
            only_fingerprint: None,
        }
    }
}

/// A complete, seeded chaos scenario: the per-device fault specs plus the
/// seed that fixes every transient-failure decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the per-launch decision hash. Two runs with equal plans see
    /// identical fault sequences.
    pub seed: u64,
    pub faults: Vec<DeviceFaults>,
}

impl FaultPlan {
    /// A plan that injects nothing (every device healthy).
    pub fn none() -> Self {
        Self {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// Whether the plan injects anything at all.
    pub fn is_noop(&self) -> bool {
        self.faults.iter().all(|f| {
            f.transient_rate <= 0.0
                && f.dies_at_launch.is_none()
                && f.panics_at_launch.is_none()
                && f.slowdown <= 1.0
        })
    }

    /// Validate the plan against a machine: device indices must exist,
    /// rates must be probabilities, slowdowns must not speed devices up.
    ///
    /// Error messages name the machine and the device by registry name
    /// (plus the index, since a machine may carry several identical
    /// cards), so a report from a fleet of heterogeneous machines reads
    /// without a device table at hand.
    pub fn validate(&self, machine: &Machine) -> Result<(), String> {
        for f in &self.faults {
            if f.device >= machine.num_devices() {
                return Err(format!(
                    "machine `{}`: fault plan names device {} but the machine has {} device(s): {}",
                    machine.name,
                    f.device,
                    machine.num_devices(),
                    machine
                        .devices
                        .iter()
                        .map(|d| format!("`{}`", d.name))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            let dev_name = &machine.devices[f.device].name;
            if !(0.0..=1.0).contains(&f.transient_rate) || f.transient_rate.is_nan() {
                return Err(format!(
                    "machine `{}`, device {} (`{dev_name}`): transient rate {} is not a probability",
                    machine.name, f.device, f.transient_rate
                ));
            }
            if f.slowdown < 1.0 || f.slowdown.is_nan() {
                return Err(format!(
                    "machine `{}`, device {} (`{dev_name}`): slowdown {} must be >= 1",
                    machine.name, f.device, f.slowdown
                ));
            }
        }
        Ok(())
    }

    /// Instantiate the runtime state (launch counters + death flags) for
    /// a machine with `num_devices` devices.
    pub fn state(&self, num_devices: usize) -> FaultState {
        FaultState {
            plan: self.clone(),
            launches: (0..num_devices).map(|_| AtomicU64::new(0)).collect(),
            dead: (0..num_devices).map(|_| AtomicBool::new(false)).collect(),
            injected_transients: AtomicU64::new(0),
            injected_deaths: AtomicU64::new(0),
        }
    }
}

/// What the fault layer decides for one launch (one device × one chunk).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultVerdict {
    /// Run the chunk; scale its simulated time by `slowdown` (1.0 for an
    /// unimpaired device).
    Healthy { slowdown: f64 },
    /// The launch fails recoverably — a retry may succeed.
    Transient,
    /// The device is gone; every future launch on it fails too.
    Dead,
    /// The launch must panic (injected driver crash).
    Panic,
}

/// SplitMix64: a tiny, well-mixed hash — decisions must be independent
/// across ordinals even for adjacent inputs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The runtime fault state shared by every executor of a service: launch
/// ordinals per device, sticky death flags, and injection counters.
pub struct FaultState {
    plan: FaultPlan,
    /// Per-device launch ordinal counter (one increment per chunk sent to
    /// the device).
    launches: Vec<AtomicU64>,
    /// Sticky per-device death flags.
    dead: Vec<AtomicBool>,
    injected_transients: AtomicU64,
    injected_deaths: AtomicU64,
}

impl fmt::Debug for FaultState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultState")
            .field("plan", &self.plan)
            .field("launches", &self.launch_counts())
            .field("dead", &self.dead_devices())
            .finish()
    }
}

impl FaultState {
    /// The plan this state executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of the next launch on `device` for a kernel with
    /// `fingerprint`, consuming one launch ordinal on that device.
    ///
    /// Deterministic: the ordinal sequence plus the seeded hash fully
    /// determine the verdict, so a single-worker service replays the
    /// exact same fault timeline on every run.
    pub fn verdict(&self, device: DeviceId, fingerprint: u64) -> FaultVerdict {
        let idx = device.0;
        if idx >= self.launches.len() {
            return FaultVerdict::Healthy { slowdown: 1.0 };
        }
        if self.dead[idx].load(Ordering::Acquire) {
            return FaultVerdict::Dead;
        }
        let ordinal = self.launches[idx].fetch_add(1, Ordering::AcqRel);
        let Some(spec) = self.plan.faults.iter().find(|f| f.device == idx) else {
            return FaultVerdict::Healthy { slowdown: 1.0 };
        };
        if let Some(only) = spec.only_fingerprint {
            if only != fingerprint {
                return FaultVerdict::Healthy { slowdown: 1.0 };
            }
        }
        if spec.dies_at_launch.is_some_and(|at| ordinal >= at) {
            self.dead[idx].store(true, Ordering::Release);
            self.injected_deaths.fetch_add(1, Ordering::Relaxed);
            return FaultVerdict::Dead;
        }
        if spec.panics_at_launch == Some(ordinal) {
            return FaultVerdict::Panic;
        }
        if spec.transient_rate > 0.0 {
            // One hash per (seed, device, ordinal, fingerprint): a unit in
            // [0, 1) compared against the rate.
            let h = splitmix64(
                self.plan
                    .seed
                    .wrapping_add(splitmix64(idx as u64 ^ ordinal.rotate_left(17)))
                    ^ fingerprint,
            );
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            if unit < spec.transient_rate {
                self.injected_transients.fetch_add(1, Ordering::Relaxed);
                return FaultVerdict::Transient;
            }
        }
        FaultVerdict::Healthy {
            slowdown: spec.slowdown.max(1.0),
        }
    }

    /// Whether `device` has died permanently.
    pub fn is_dead(&self, device: DeviceId) -> bool {
        self.dead
            .get(device.0)
            .is_some_and(|d| d.load(Ordering::Acquire))
    }

    /// Indices of permanently dead devices.
    pub fn dead_devices(&self) -> Vec<usize> {
        self.dead
            .iter()
            .enumerate()
            .filter(|(_, d)| d.load(Ordering::Acquire))
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-device launch ordinals consumed so far.
    pub fn launch_counts(&self) -> Vec<u64> {
        self.launches
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .collect()
    }

    /// Transient failures injected so far.
    pub fn transients_injected(&self) -> u64 {
        self.injected_transients.load(Ordering::Relaxed)
    }

    /// Permanent deaths triggered so far.
    pub fn deaths_injected(&self) -> u64 {
        self.injected_deaths.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    fn noisy_plan() -> FaultPlan {
        FaultPlan {
            seed: 42,
            faults: vec![
                DeviceFaults {
                    transient_rate: 0.3,
                    slowdown: 2.0,
                    ..DeviceFaults::none(1)
                },
                DeviceFaults {
                    dies_at_launch: Some(5),
                    ..DeviceFaults::none(2)
                },
            ],
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_verdict_sequence() {
        let plan = noisy_plan();
        let a = plan.state(3);
        let b = plan.state(3);
        for _ in 0..200 {
            for dev in 0..3 {
                assert_eq!(
                    a.verdict(DeviceId(dev), 0xfeed),
                    b.verdict(DeviceId(dev), 0xfeed)
                );
            }
        }
        assert_eq!(a.transients_injected(), b.transients_injected());
        assert!(a.transients_injected() > 0, "rate 0.3 over 200 draws");
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let mut plan = noisy_plan();
        let a = plan.state(3);
        plan.seed = 43;
        let b = plan.state(3);
        let mut differs = false;
        for _ in 0..200 {
            differs |= a.verdict(DeviceId(1), 7) != b.verdict(DeviceId(1), 7);
        }
        assert!(differs, "seeds 42 and 43 should disagree on some launch");
    }

    #[test]
    fn death_is_sticky_and_counted_once() {
        let state = noisy_plan().state(3);
        for i in 0..5 {
            assert!(
                matches!(state.verdict(DeviceId(2), 0), FaultVerdict::Healthy { .. }),
                "launch {i} precedes the death ordinal"
            );
        }
        assert_eq!(state.verdict(DeviceId(2), 0), FaultVerdict::Dead);
        assert_eq!(state.verdict(DeviceId(2), 0), FaultVerdict::Dead);
        assert!(state.is_dead(DeviceId(2)));
        assert_eq!(state.dead_devices(), vec![2]);
        assert_eq!(state.deaths_injected(), 1);
    }

    #[test]
    fn fingerprint_filter_spares_other_kernels() {
        let plan = FaultPlan {
            seed: 7,
            faults: vec![DeviceFaults {
                transient_rate: 1.0,
                only_fingerprint: Some(0xabcd),
                ..DeviceFaults::none(1)
            }],
        };
        let state = plan.state(3);
        assert!(matches!(
            state.verdict(DeviceId(1), 0x1234),
            FaultVerdict::Healthy { .. }
        ));
        assert_eq!(state.verdict(DeviceId(1), 0xabcd), FaultVerdict::Transient);
    }

    #[test]
    fn panic_ordinal_fires_exactly_once() {
        let plan = FaultPlan {
            seed: 1,
            faults: vec![DeviceFaults {
                panics_at_launch: Some(1),
                ..DeviceFaults::none(0)
            }],
        };
        let state = plan.state(3);
        assert!(matches!(
            state.verdict(DeviceId(0), 0),
            FaultVerdict::Healthy { .. }
        ));
        assert_eq!(state.verdict(DeviceId(0), 0), FaultVerdict::Panic);
        assert!(matches!(
            state.verdict(DeviceId(0), 0),
            FaultVerdict::Healthy { .. }
        ));
    }

    #[test]
    fn healthy_devices_and_out_of_range_devices_pass_through() {
        let state = noisy_plan().state(3);
        assert_eq!(
            state.verdict(DeviceId(0), 0),
            FaultVerdict::Healthy { slowdown: 1.0 }
        );
        // A device the state was never sized for never faults (and never
        // indexes out of bounds).
        assert_eq!(
            state.verdict(DeviceId(17), 0),
            FaultVerdict::Healthy { slowdown: 1.0 }
        );
    }

    #[test]
    fn validation_catches_bad_plans() {
        let m = machines::mc2();
        let bad_dev = FaultPlan {
            seed: 0,
            faults: vec![DeviceFaults::none(9)],
        };
        assert!(bad_dev.validate(&m).is_err());
        let bad_rate = FaultPlan {
            seed: 0,
            faults: vec![DeviceFaults {
                transient_rate: 1.5,
                ..DeviceFaults::none(1)
            }],
        };
        assert!(bad_rate.validate(&m).is_err());
        let bad_slow = FaultPlan {
            seed: 0,
            faults: vec![DeviceFaults {
                slowdown: 0.5,
                ..DeviceFaults::none(1)
            }],
        };
        assert!(bad_slow.validate(&m).is_err());
        assert!(noisy_plan().validate(&m).is_ok());
        assert!(FaultPlan::none().validate(&m).is_ok());
        assert!(FaultPlan::none().is_noop());
        assert!(!noisy_plan().is_noop());
    }

    #[test]
    fn validation_errors_name_machine_and_device() {
        // Regression-locked against a zoo machine: the messages must carry
        // the registry names, not bare indices.
        let m = machines::by_name("slow_interconnect");
        let bad_rate = FaultPlan {
            seed: 0,
            faults: vec![DeviceFaults {
                transient_rate: 2.0,
                ..DeviceFaults::none(1)
            }],
        };
        let msg = bad_rate.validate(&m).unwrap_err();
        assert!(msg.contains("machine `slow_interconnect`"), "{msg}");
        assert!(msg.contains("discrete GPU on 1x PCIe riser (A)"), "{msg}");

        let bad_dev = FaultPlan {
            seed: 0,
            faults: vec![DeviceFaults::none(7)],
        };
        let msg = bad_dev.validate(&m).unwrap_err();
        assert!(msg.contains("machine `slow_interconnect`"), "{msg}");
        assert!(msg.contains("8-core workstation CPU"), "{msg}");

        let bad_slow = FaultPlan {
            seed: 0,
            faults: vec![DeviceFaults {
                slowdown: 0.25,
                ..DeviceFaults::none(0)
            }],
        };
        let msg = bad_slow.validate(&m).unwrap_err();
        assert!(msg.contains("device 0 (`8-core workstation CPU`)"), "{msg}");
    }

    #[test]
    fn plan_roundtrips_serde() {
        let plan = noisy_plan();
        let js = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&js).unwrap();
        assert_eq!(plan, back);
    }
}
