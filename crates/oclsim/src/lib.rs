//! # hetpart-oclsim
//!
//! A simulated OpenCL platform: device performance models, the paper's two
//! target machines (`mc1`, `mc2`), and the analytic cost model that turns
//! a kernel chunk's dynamic operation counts into a simulated execution
//! time.
//!
//! ## Why a simulator
//!
//! The paper evaluates on two physical machines with three OpenCL devices
//! each (one dual-socket CPU device + two discrete GPUs). This crate
//! substitutes calibrated analytic models for the hardware. The model
//! captures exactly the effects that make the paper's problem non-trivial:
//!
//! * relative ALU/memory throughput differences between CPU and GPU,
//! * PCIe transfer cost that penalizes GPUs at small problem sizes
//!   (kernel time is always measured *including* transfers, following
//!   Gregg & Hazelwood, as the paper does),
//! * per-launch overhead that penalizes multi-device splits of tiny
//!   kernels,
//! * SIMT divergence penalties and the VLIW ILP sensitivity that makes
//!   `mc1`'s Radeon HD 5870 weak on untuned scalar code (the paper calls
//!   this out explicitly),
//! * memory-coalescing sensitivity for GPU access patterns.
//!
//! Everything is deterministic: the same workload produces the same time.
//!
//! ## Example
//!
//! ```
//! use hetpart_oclsim::{machines, model::{WorkloadShape, estimate_time}};
//!
//! let mc2 = machines::mc2();
//! let n: u64 = 1 << 20;
//! let w = WorkloadShape {
//!     items: n,
//!     int_ops: 4 * n,
//!     float_ops: 200 * n,       // compute-heavy kernel
//!     transcendental_ops: 20 * n,
//!     cmp_ops: n,
//!     branch_ops: n,
//!     other_ops: 2 * n,
//!     loads: 2 * n,
//!     stores: n,
//!     bytes_in: 8 * n,
//!     bytes_out: 4 * n,
//!     divergence: 0.0,
//!     coalesced_fraction: 1.0,
//! };
//! let cpu = estimate_time(&mc2.devices[0], &w);
//! let gpu = estimate_time(&mc2.devices[1], &w);
//! // A compute-bound kernel this large runs faster on the GTX 480 than on
//! // the Xeon CPU device even after paying PCIe transfers.
//! assert!(gpu.total < cpu.total);
//! ```

pub mod calibrate;
pub mod device;
pub mod fault;
pub mod machine;
pub mod machines;
pub mod model;
pub mod registry;

pub use calibrate::{
    calibrate_device, calibration_workloads, fit_op_costs, max_relative_error, CalibrateError,
    CalibrationOutcome,
};
pub use device::{DeviceClass, DeviceId, DeviceProfile, OpCosts};
pub use fault::{DeviceFaults, FaultPlan, FaultState, FaultVerdict};
pub use machine::Machine;
pub use model::{effective_alu_throughput, estimate_time, TimeBreakdown, WorkloadShape};
pub use registry::{
    machine_from_profile_str, machine_to_profile_json, validate_machine, MachineRegistry,
    RegistryError, PROFILE_SCHEMA_VERSION,
};
