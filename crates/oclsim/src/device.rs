//! Device performance profiles.

use serde::{Deserialize, Serialize};

/// Index of a device within a [`crate::Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device {}", self.0)
    }
}

/// Broad architectural class of a device; selects which inefficiency terms
/// of the cost model apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Multi-core CPU exposed as one OpenCL device (MIMD; divergence is
    /// nearly free, memory attaches directly to host RAM).
    Cpu,
    /// Scalar SIMT GPU (NVIDIA Fermi-style): lock-step warps pay for
    /// divergence; uncoalesced access wastes bandwidth.
    GpuSimt,
    /// VLIW SIMD GPU (AMD TeraScale-style, e.g. Radeon HD 5870): peak
    /// throughput requires filling several issue slots per lane, which
    /// untuned scalar code does not; branches are extra painful.
    GpuVliw,
}

/// Per-class operation costs in cycles per lane.
///
/// These follow published instruction-throughput tables shape-wise: integer
/// multiplies and transcendentals are several times more expensive than
/// simple ALU ops everywhere; GPUs run transcendentals on special-function
/// units (cheap relative to their ALU rate), CPUs call libm (expensive).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCosts {
    /// Integer ALU operation.
    pub int_op: f64,
    /// Float add/sub/mul/div (averaged).
    pub float_op: f64,
    /// Transcendental / special function.
    pub transcendental: f64,
    /// Compare.
    pub cmp: f64,
    /// Branch (taken-or-not, excludes the divergence penalty).
    pub branch: f64,
    /// Everything else (moves, constants, id queries).
    pub other: f64,
}

impl OpCosts {
    /// A rough CPU cost table for *untuned scalar OpenCL kernels* (no
    /// vectorization — the paper stresses none of the codes was tuned):
    /// roughly one scalar op per cycle, libm transcendentals.
    pub fn cpu() -> Self {
        Self {
            int_op: 1.1,
            float_op: 1.2,
            transcendental: 18.0,
            cmp: 1.0,
            branch: 1.5,
            other: 0.6,
        }
    }

    /// A CPU cost table for a *vectorizing* OpenCL CPU runtime (Intel's
    /// 2012 driver auto-vectorized kernels to SSE, including SVML
    /// transcendentals): several scalar ops per cycle per core.
    pub fn cpu_vectorizing() -> Self {
        Self {
            int_op: 0.8,
            float_op: 0.75,
            transcendental: 5.5,
            cmp: 0.7,
            branch: 1.1,
            other: 0.4,
        }
    }

    /// A scalar SIMT GPU cost table (per-lane cycles; SFU transcendentals).
    pub fn gpu_simt() -> Self {
        Self {
            int_op: 1.0,
            float_op: 1.0,
            transcendental: 4.0,
            cmp: 1.0,
            branch: 2.0,
            other: 0.5,
        }
    }

    /// A VLIW GPU cost table (per-slot cycles; the T-unit handles
    /// transcendentals).
    pub fn gpu_vliw() -> Self {
        Self {
            int_op: 1.0,
            float_op: 1.0,
            transcendental: 5.0,
            cmp: 1.0,
            branch: 3.0,
            other: 0.5,
        }
    }

    /// The costs as `(op name, cycles)` pairs, in a fixed canonical order.
    pub fn as_named(&self) -> [(&'static str, f64); 6] {
        [
            ("int_op", self.int_op),
            ("float_op", self.float_op),
            ("transcendental", self.transcendental),
            ("cmp", self.cmp),
            ("branch", self.branch),
            ("other", self.other),
        ]
    }

    /// Every per-op cost must be a positive finite cycle count; returns
    /// `(op name, offending value)` for the first one that is not.
    pub fn validate(&self) -> Result<(), (&'static str, f64)> {
        for (op, v) in self.as_named() {
            if !v.is_finite() || v <= 0.0 {
                return Err((op, v));
            }
        }
        Ok(())
    }
}

/// A complete device performance profile.
///
/// The defaults produced by the constructors are calibrated against the
/// devices of the paper's machines; see [`crate::machines`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Marketing name, for reports.
    pub name: String,
    pub class: DeviceClass,
    /// Compute units (CPU cores / GPU SMs / GPU SIMD engines).
    pub compute_units: u32,
    /// Lanes per compute unit (1 for CPU scalar issue, warp/wavefront lane
    /// count for GPUs).
    pub lanes_per_unit: u32,
    /// VLIW issue slots per lane (1 for everything except VLIW GPUs).
    pub ilp_width: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Per-op cycle costs.
    pub cost: OpCosts,
    /// Peak device memory bandwidth, GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Fraction of peak bandwidth achieved by fully uncoalesced access.
    pub uncoalesced_efficiency: f64,
    /// Host↔device link bandwidth, GB/s. `None` means the device shares
    /// host memory (the CPU device: zero-copy, no transfers).
    pub link_bandwidth_gbs: Option<f64>,
    /// One-way link latency per transfer batch, microseconds.
    pub link_latency_us: f64,
    /// Fixed kernel-launch overhead, microseconds.
    pub launch_overhead_us: f64,
    /// Extra slowdown factor at full control-flow divergence (0 ⇒ immune).
    pub divergence_penalty: f64,
    /// Work-items needed to reach full throughput; fewer items leave
    /// lanes idle.
    pub saturation_items: f64,
    /// Fraction of VLIW slots an untuned scalar kernel fills beyond the
    /// first (only meaningful for `GpuVliw`; the model refines this with
    /// the instruction mix).
    pub base_ilp_fill: f64,
}

impl DeviceProfile {
    /// Effective parallel lanes (`compute_units × lanes_per_unit`).
    pub fn total_lanes(&self) -> f64 {
        f64::from(self.compute_units) * f64::from(self.lanes_per_unit)
    }

    /// Whether the device reads host memory directly (no PCIe transfers).
    pub fn is_host_device(&self) -> bool {
        self.link_bandwidth_gbs.is_none()
    }

    /// Sanity-check the numbers; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("device name must not be empty".into());
        }
        if self.compute_units == 0 || self.lanes_per_unit == 0 || self.ilp_width == 0 {
            return Err(format!(
                "{}: unit/lane/slot counts must be non-zero",
                self.name
            ));
        }
        if self.clock_ghz.is_nan() || self.clock_ghz <= 0.0 {
            return Err(format!("{}: clock must be positive", self.name));
        }
        if let Err((op, v)) = self.cost.validate() {
            return Err(format!(
                "{}: op cost `{op}` must be a positive cycle count, got {v}",
                self.name
            ));
        }
        if self.mem_bandwidth_gbs.is_nan() || self.mem_bandwidth_gbs <= 0.0 {
            return Err(format!("{}: memory bandwidth must be positive", self.name));
        }
        if !(0.0..=1.0).contains(&self.uncoalesced_efficiency) || self.uncoalesced_efficiency == 0.0
        {
            return Err(format!(
                "{}: uncoalesced efficiency must be in (0, 1]",
                self.name
            ));
        }
        if let Some(bw) = self.link_bandwidth_gbs {
            if bw.is_nan() || bw <= 0.0 {
                return Err(format!("{}: link bandwidth must be positive", self.name));
            }
        }
        if !(0.0..=1.0).contains(&self.base_ilp_fill) {
            return Err(format!("{}: base ILP fill must be in [0, 1]", self.name));
        }
        if self.divergence_penalty < 0.0 {
            return Err(format!(
                "{}: divergence penalty must be non-negative",
                self.name
            ));
        }
        if self.saturation_items.is_nan() || self.saturation_items < 1.0 {
            return Err(format!("{}: saturation_items must be >= 1", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    #[test]
    fn stock_profiles_validate() {
        for m in [machines::mc1(), machines::mc2()] {
            for d in &m.devices {
                d.validate().unwrap_or_else(|e| panic!("{e}"));
            }
        }
    }

    #[test]
    fn total_lanes_multiplies() {
        let d = machines::mc2().devices[1].clone();
        assert_eq!(
            d.total_lanes(),
            f64::from(d.compute_units * d.lanes_per_unit)
        );
    }

    #[test]
    fn cpu_is_host_device_gpus_are_not() {
        let m = machines::mc1();
        assert!(m.devices[0].is_host_device());
        assert!(!m.devices[1].is_host_device());
        assert!(!m.devices[2].is_host_device());
    }

    #[test]
    fn validate_catches_bad_numbers() {
        let mut d = machines::mc1().devices[0].clone();
        d.clock_ghz = 0.0;
        assert!(d.validate().is_err());
        let mut d2 = machines::mc1().devices[1].clone();
        d2.uncoalesced_efficiency = 0.0;
        assert!(d2.validate().is_err());
        let mut d3 = machines::mc1().devices[1].clone();
        d3.saturation_items = 0.0;
        assert!(d3.validate().is_err());
    }

    #[test]
    fn profiles_roundtrip_serde() {
        let d = machines::mc2().devices[2].clone();
        let json = serde_json::to_string(&d).unwrap();
        let back: DeviceProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
