//! The paper's two target machines, `mc1` and `mc2`.
//!
//! > "The first platform, mc1, consists of two AMD Opteron CPUs and two
//! > Ati Radeon HD 5870 GPUs, while the second, mc2, holds two Intel Xeon
//! > CPUs and two NVIDIA GeForce GTX 480 GPUs."
//!
//! The profiles below are calibrated from the public specifications of
//! those parts (core counts, clocks, memory and PCIe 2.0 bandwidths) with
//! efficiency factors chosen to reproduce the paper's qualitative result:
//! on `mc1` the VLIW GPUs underperform on untuned scalar kernels (so the
//! CPU-only default usually wins), on `mc2` the scalar SIMT GTX 480s are
//! strong (so the GPU-only default usually wins).

use crate::device::{DeviceClass, DeviceProfile, OpCosts};
use crate::machine::Machine;

/// Dual-socket AMD Opteron (Magny-Cours-class, 2 × 12 cores @ 1.9 GHz)
/// exposed as a single OpenCL CPU device, as the paper reports.
pub fn opteron_cpu() -> DeviceProfile {
    DeviceProfile {
        name: "2x AMD Opteron (24 cores)".into(),
        class: DeviceClass::Cpu,
        compute_units: 24,
        lanes_per_unit: 1,
        ilp_width: 1,
        clock_ghz: 1.9,
        cost: OpCosts::cpu(),
        // Untuned single-buffer allocations land on one NUMA node of the
        // four-node Magny-Cours topology, so effective bandwidth is far
        // below the aggregate peak.
        mem_bandwidth_gbs: 19.0,
        // Caches hide most strided-access cost on CPUs.
        uncoalesced_efficiency: 0.7,
        link_bandwidth_gbs: None,
        link_latency_us: 0.0,
        launch_overhead_us: 6.0,
        // MIMD cores do not suffer lock-step divergence.
        divergence_penalty: 0.05,
        saturation_items: 96.0,
        base_ilp_fill: 1.0,
    }
}

/// ATI Radeon HD 5870: 20 SIMD engines × 16 lanes × 5 VLIW slots @ 850 MHz,
/// 153 GB/s GDDR5, PCIe 2.0.
///
/// The paper: "The VLIW architecture with a very wide instruction width and
/// high branch miss penalty would require specific fine-tuning of each code
/// to perform well. However, none of our test cases was tuned for a
/// specific device." `base_ilp_fill` models exactly that: untuned scalar
/// kernels fill only a small fraction of the 4 extra slots.
pub fn radeon_hd5870() -> DeviceProfile {
    DeviceProfile {
        name: "ATI Radeon HD 5870".into(),
        class: DeviceClass::GpuVliw,
        compute_units: 20,
        lanes_per_unit: 16,
        ilp_width: 5,
        clock_ghz: 0.85,
        cost: OpCosts::gpu_vliw(),
        mem_bandwidth_gbs: 153.0,
        uncoalesced_efficiency: 0.08,
        link_bandwidth_gbs: Some(4.0),
        link_latency_us: 22.0,
        launch_overhead_us: 90.0,
        // "high branch miss penalty".
        divergence_penalty: 9.0,
        saturation_items: 8_192.0,
        base_ilp_fill: 0.3,
    }
}

/// Dual-socket Intel Xeon (Westmere-class, 2 × 6 cores @ 2.67 GHz) exposed
/// as a single OpenCL CPU device, driven by Intel's vectorizing OpenCL
/// runtime (the reason the CPU remains competitive on mc2 while the GPUs
/// still usually win there).
pub fn xeon_cpu() -> DeviceProfile {
    DeviceProfile {
        name: "2x Intel Xeon (12 cores)".into(),
        class: DeviceClass::Cpu,
        compute_units: 12,
        lanes_per_unit: 1,
        ilp_width: 1,
        clock_ghz: 2.67,
        cost: OpCosts::cpu_vectorizing(),
        mem_bandwidth_gbs: 26.0,
        uncoalesced_efficiency: 0.7,
        link_bandwidth_gbs: None,
        link_latency_us: 0.0,
        launch_overhead_us: 8.0,
        divergence_penalty: 0.05,
        saturation_items: 48.0,
        base_ilp_fill: 1.0,
    }
}

/// NVIDIA GeForce GTX 480 (Fermi): 15 SMs × 32 lanes @ 1.4 GHz shader
/// clock, 177 GB/s GDDR5, PCIe 2.0. Scalar SIMT cores run untuned code
/// well — the reason GPU-only usually wins on `mc2`.
pub fn gtx480() -> DeviceProfile {
    DeviceProfile {
        name: "NVIDIA GeForce GTX 480".into(),
        class: DeviceClass::GpuSimt,
        compute_units: 15,
        lanes_per_unit: 32,
        ilp_width: 1,
        clock_ghz: 1.4,
        cost: OpCosts::gpu_simt(),
        mem_bandwidth_gbs: 150.0,
        uncoalesced_efficiency: 0.15,
        link_bandwidth_gbs: Some(7.0),
        link_latency_us: 12.0,
        launch_overhead_us: 20.0,
        divergence_penalty: 2.5,
        saturation_items: 7_680.0,
        base_ilp_fill: 1.0,
    }
}

/// `mc1`: 2× AMD Opteron (one CPU device) + 2× ATI Radeon HD 5870.
pub fn mc1() -> Machine {
    Machine::new(
        "mc1",
        vec![opteron_cpu(), radeon_hd5870(), radeon_hd5870()],
        25.0,
    )
}

/// `mc2`: 2× Intel Xeon (one CPU device) + 2× NVIDIA GeForce GTX 480.
pub fn mc2() -> Machine {
    Machine::new("mc2", vec![xeon_cpu(), gtx480(), gtx480()], 20.0)
}

/// Both paper machines, in the order the paper reports them.
pub fn paper_machines() -> Vec<Machine> {
    vec![mc1(), mc2()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{estimate_time, WorkloadShape};

    /// A large, clean streaming workload (vec_add-like): per item one float
    /// op, two loads, one store, 12 bytes in / 4 bytes out.
    fn streaming(items: u64) -> WorkloadShape {
        WorkloadShape {
            items,
            int_ops: 2 * items,
            float_ops: items,
            transcendental_ops: 0,
            cmp_ops: items,
            branch_ops: items,
            other_ops: 2 * items,
            loads: 2 * items,
            stores: items,
            bytes_in: 12 * items,
            bytes_out: 4 * items,
            divergence: 0.0,
            coalesced_fraction: 1.0,
        }
    }

    /// A compute-heavy workload (nbody-like): hundreds of float ops per
    /// loaded byte.
    fn compute_bound(items: u64) -> WorkloadShape {
        WorkloadShape {
            items,
            int_ops: 50 * items,
            float_ops: 2000 * items,
            transcendental_ops: 100 * items,
            cmp_ops: 60 * items,
            branch_ops: 60 * items,
            other_ops: 100 * items,
            loads: 64 * items,
            stores: items,
            bytes_in: 16 * items,
            bytes_out: 16 * items,
            divergence: 0.05,
            coalesced_fraction: 1.0,
        }
    }

    #[test]
    fn mc1_cpu_beats_gpu_on_streaming() {
        // PCIe-bound streaming favours the host device on mc1.
        let m = mc1();
        let w = streaming(1 << 20);
        let cpu = estimate_time(&m.devices[0], &w).total;
        let gpu = estimate_time(&m.devices[1], &w).total;
        assert!(cpu < gpu, "cpu={cpu:.6} gpu={gpu:.6}");
    }

    #[test]
    fn mc2_gpu_beats_cpu_on_compute_bound() {
        let m = mc2();
        let w = compute_bound(1 << 16);
        let cpu = estimate_time(&m.devices[0], &w).total;
        let gpu = estimate_time(&m.devices[1], &w).total;
        assert!(gpu < cpu, "cpu={cpu:.6} gpu={gpu:.6}");
    }

    #[test]
    fn mc1_vliw_gpu_is_weaker_than_mc2_simt_gpu_on_divergent_code() {
        let mut w = compute_bound(1 << 16);
        w.divergence = 0.8;
        let hd = estimate_time(&mc1().devices[1], &w).total;
        let gtx = estimate_time(&mc2().devices[1], &w).total;
        assert!(gtx < hd, "gtx={gtx:.6} hd5870={hd:.6}");
    }

    #[test]
    fn tiny_problems_favour_cpu_everywhere() {
        for m in paper_machines() {
            let w = streaming(256);
            let cpu = estimate_time(&m.devices[0], &w).total;
            let gpu = estimate_time(&m.devices[1], &w).total;
            assert!(cpu < gpu, "{}: cpu={cpu:.6} gpu={gpu:.6}", m.name);
        }
    }

    #[test]
    fn gpu_crossover_exists_on_mc2() {
        // Somewhere between tiny and huge compute-bound workloads the GTX
        // 480 overtakes the Xeon — the paper's core "problem size matters"
        // observation.
        let m = mc2();
        let small = compute_bound(64);
        let large = compute_bound(1 << 18);
        let cpu_small = estimate_time(&m.devices[0], &small).total;
        let gpu_small = estimate_time(&m.devices[1], &small).total;
        let cpu_large = estimate_time(&m.devices[0], &large).total;
        let gpu_large = estimate_time(&m.devices[1], &large).total;
        assert!(cpu_small < gpu_small, "small sizes must favour the CPU");
        assert!(gpu_large < cpu_large, "large sizes must favour the GPU");
    }
}
