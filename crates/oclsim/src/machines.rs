//! The paper's two target machines, `mc1` and `mc2`, plus the synthetic
//! zoo — all loaded from the embedded JSON profiles under `profiles/`.
//!
//! > "The first platform, mc1, consists of two AMD Opteron CPUs and two
//! > Ati Radeon HD 5870 GPUs, while the second, mc2, holds two Intel Xeon
//! > CPUs and two NVIDIA GeForce GTX 480 GPUs."
//!
//! The stock profiles are calibrated from the public specifications of
//! those parts (core counts, clocks, memory and PCIe 2.0 bandwidths) with
//! efficiency factors chosen to reproduce the paper's qualitative result:
//! on `mc1` the VLIW GPUs underperform on untuned scalar kernels (so the
//! CPU-only default usually wins), on `mc2` the scalar SIMT GTX 480s are
//! strong (so the GPU-only default usually wins). The numbers themselves
//! now live in `profiles/mc1.json` / `profiles/mc2.json` and load through
//! [`crate::registry::MachineRegistry`] — the same path as any
//! user-supplied machine — so the data path is regression-locked by every
//! test that touches the paper machines.

use std::sync::OnceLock;

use crate::machine::Machine;
use crate::registry::MachineRegistry;

/// The shared registry of embedded machines (paper machines + zoo),
/// loaded once per process.
pub fn builtin_registry() -> &'static MachineRegistry {
    static REGISTRY: OnceLock<MachineRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MachineRegistry::builtin)
}

/// Fetch an embedded machine by registry name.
///
/// # Panics
/// Panics if no embedded machine has that name; the inventory is fixed at
/// compile time, so a miss is a bug in the caller.
pub fn by_name(name: &str) -> Machine {
    builtin_registry()
        .get(name)
        .unwrap_or_else(|| panic!("no embedded machine named `{name}`"))
        .clone()
}

/// `mc1`: 2× AMD Opteron (one CPU device) + 2× ATI Radeon HD 5870.
pub fn mc1() -> Machine {
    by_name("mc1")
}

/// `mc2`: 2× Intel Xeon (one CPU device) + 2× NVIDIA GeForce GTX 480.
pub fn mc2() -> Machine {
    by_name("mc2")
}

/// Both paper machines, in the order the paper reports them.
pub fn paper_machines() -> Vec<Machine> {
    vec![mc1(), mc2()]
}

/// The synthetic zoo: every embedded machine that is *not* one of the
/// paper machines, in registry order. Each profile exercises a different
/// corner of the partition space — device counts 1 through 5, shared
/// versus PCIe memory, symmetric versus asymmetric CPUs.
pub fn zoo() -> Vec<Machine> {
    builtin_registry()
        .machines()
        .iter()
        .filter(|m| m.name != "mc1" && m.name != "mc2")
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceClass, DeviceProfile, OpCosts};
    use crate::model::{estimate_time, WorkloadShape};

    // ---- Legacy literal constructors ---------------------------------
    //
    // The hand-built profiles that used to define mc1/mc2 in code. They
    // survive only here, as the reference side of the bit-identity test
    // that regression-locks the JSON data path against the original
    // numbers.

    fn legacy_opteron_cpu() -> DeviceProfile {
        DeviceProfile {
            name: "2x AMD Opteron (24 cores)".into(),
            class: DeviceClass::Cpu,
            compute_units: 24,
            lanes_per_unit: 1,
            ilp_width: 1,
            clock_ghz: 1.9,
            cost: OpCosts::cpu(),
            mem_bandwidth_gbs: 19.0,
            uncoalesced_efficiency: 0.7,
            link_bandwidth_gbs: None,
            link_latency_us: 0.0,
            launch_overhead_us: 6.0,
            divergence_penalty: 0.05,
            saturation_items: 96.0,
            base_ilp_fill: 1.0,
        }
    }

    fn legacy_radeon_hd5870() -> DeviceProfile {
        DeviceProfile {
            name: "ATI Radeon HD 5870".into(),
            class: DeviceClass::GpuVliw,
            compute_units: 20,
            lanes_per_unit: 16,
            ilp_width: 5,
            clock_ghz: 0.85,
            cost: OpCosts::gpu_vliw(),
            mem_bandwidth_gbs: 153.0,
            uncoalesced_efficiency: 0.08,
            link_bandwidth_gbs: Some(4.0),
            link_latency_us: 22.0,
            launch_overhead_us: 90.0,
            divergence_penalty: 9.0,
            saturation_items: 8_192.0,
            base_ilp_fill: 0.3,
        }
    }

    fn legacy_xeon_cpu() -> DeviceProfile {
        DeviceProfile {
            name: "2x Intel Xeon (12 cores)".into(),
            class: DeviceClass::Cpu,
            compute_units: 12,
            lanes_per_unit: 1,
            ilp_width: 1,
            clock_ghz: 2.67,
            cost: OpCosts::cpu_vectorizing(),
            mem_bandwidth_gbs: 26.0,
            uncoalesced_efficiency: 0.7,
            link_bandwidth_gbs: None,
            link_latency_us: 0.0,
            launch_overhead_us: 8.0,
            divergence_penalty: 0.05,
            saturation_items: 48.0,
            base_ilp_fill: 1.0,
        }
    }

    fn legacy_gtx480() -> DeviceProfile {
        DeviceProfile {
            name: "NVIDIA GeForce GTX 480".into(),
            class: DeviceClass::GpuSimt,
            compute_units: 15,
            lanes_per_unit: 32,
            ilp_width: 1,
            clock_ghz: 1.4,
            cost: OpCosts::gpu_simt(),
            mem_bandwidth_gbs: 150.0,
            uncoalesced_efficiency: 0.15,
            link_bandwidth_gbs: Some(7.0),
            link_latency_us: 12.0,
            launch_overhead_us: 20.0,
            divergence_penalty: 2.5,
            saturation_items: 7_680.0,
            base_ilp_fill: 1.0,
        }
    }

    fn legacy_mc1() -> Machine {
        Machine::new(
            "mc1",
            vec![
                legacy_opteron_cpu(),
                legacy_radeon_hd5870(),
                legacy_radeon_hd5870(),
            ],
            25.0,
        )
    }

    fn legacy_mc2() -> Machine {
        Machine::new(
            "mc2",
            vec![legacy_xeon_cpu(), legacy_gtx480(), legacy_gtx480()],
            20.0,
        )
    }

    #[test]
    fn json_machines_are_bit_identical_to_legacy_constructors() {
        for (loaded, legacy) in [(mc1(), legacy_mc1()), (mc2(), legacy_mc2())] {
            assert_eq!(loaded.name, legacy.name);
            assert_eq!(
                loaded.multi_device_overhead_us.to_bits(),
                legacy.multi_device_overhead_us.to_bits()
            );
            assert_eq!(loaded.devices.len(), legacy.devices.len());
            for (i, (ld, lg)) in loaded.devices.iter().zip(&legacy.devices).enumerate() {
                assert_eq!(ld.name, lg.name, "device {i} name");
                assert_eq!(ld.class, lg.class, "device {i} class");
                assert_eq!(ld.compute_units, lg.compute_units, "device {i}");
                assert_eq!(ld.lanes_per_unit, lg.lanes_per_unit, "device {i}");
                assert_eq!(ld.ilp_width, lg.ilp_width, "device {i}");
                let bits = |x: f64| x.to_bits();
                assert_eq!(bits(ld.clock_ghz), bits(lg.clock_ghz), "device {i} clock");
                for ((op, got), (_, want)) in ld.cost.as_named().into_iter().zip(lg.cost.as_named())
                {
                    assert_eq!(bits(got), bits(want), "device {i} cost `{op}`");
                }
                assert_eq!(bits(ld.mem_bandwidth_gbs), bits(lg.mem_bandwidth_gbs));
                assert_eq!(
                    bits(ld.uncoalesced_efficiency),
                    bits(lg.uncoalesced_efficiency)
                );
                assert_eq!(
                    ld.link_bandwidth_gbs.map(bits),
                    lg.link_bandwidth_gbs.map(bits),
                    "device {i} link bandwidth"
                );
                assert_eq!(bits(ld.link_latency_us), bits(lg.link_latency_us));
                assert_eq!(bits(ld.launch_overhead_us), bits(lg.launch_overhead_us));
                assert_eq!(bits(ld.divergence_penalty), bits(lg.divergence_penalty));
                assert_eq!(bits(ld.saturation_items), bits(lg.saturation_items));
                assert_eq!(bits(ld.base_ilp_fill), bits(lg.base_ilp_fill));
            }
            // The field-by-field pass above localizes any drift; these two
            // seal the whole-machine equality (including fingerprints).
            assert_eq!(loaded, legacy);
            assert_eq!(loaded.fingerprint(), legacy.fingerprint());
        }
    }

    #[test]
    fn zoo_machines_all_validate() {
        let zoo = zoo();
        assert!(zoo.len() >= 5, "expected at least 5 zoo machines");
        for m in &zoo {
            crate::registry::validate_machine(m).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    // ---- Qualitative behavior of the stock machines -------------------

    /// A large, clean streaming workload (vec_add-like): per item one float
    /// op, two loads, one store, 12 bytes in / 4 bytes out.
    fn streaming(items: u64) -> WorkloadShape {
        WorkloadShape {
            items,
            int_ops: 2 * items,
            float_ops: items,
            transcendental_ops: 0,
            cmp_ops: items,
            branch_ops: items,
            other_ops: 2 * items,
            loads: 2 * items,
            stores: items,
            bytes_in: 12 * items,
            bytes_out: 4 * items,
            divergence: 0.0,
            coalesced_fraction: 1.0,
        }
    }

    /// A compute-heavy workload (nbody-like): hundreds of float ops per
    /// loaded byte.
    fn compute_bound(items: u64) -> WorkloadShape {
        WorkloadShape {
            items,
            int_ops: 50 * items,
            float_ops: 2000 * items,
            transcendental_ops: 100 * items,
            cmp_ops: 60 * items,
            branch_ops: 60 * items,
            other_ops: 100 * items,
            loads: 64 * items,
            stores: items,
            bytes_in: 16 * items,
            bytes_out: 16 * items,
            divergence: 0.05,
            coalesced_fraction: 1.0,
        }
    }

    #[test]
    fn mc1_cpu_beats_gpu_on_streaming() {
        // PCIe-bound streaming favours the host device on mc1.
        let m = mc1();
        let w = streaming(1 << 20);
        let cpu = estimate_time(&m.devices[0], &w).total;
        let gpu = estimate_time(&m.devices[1], &w).total;
        assert!(cpu < gpu, "cpu={cpu:.6} gpu={gpu:.6}");
    }

    #[test]
    fn mc2_gpu_beats_cpu_on_compute_bound() {
        let m = mc2();
        let w = compute_bound(1 << 16);
        let cpu = estimate_time(&m.devices[0], &w).total;
        let gpu = estimate_time(&m.devices[1], &w).total;
        assert!(gpu < cpu, "cpu={cpu:.6} gpu={gpu:.6}");
    }

    #[test]
    fn mc1_vliw_gpu_is_weaker_than_mc2_simt_gpu_on_divergent_code() {
        let mut w = compute_bound(1 << 16);
        w.divergence = 0.8;
        let hd = estimate_time(&mc1().devices[1], &w).total;
        let gtx = estimate_time(&mc2().devices[1], &w).total;
        assert!(gtx < hd, "gtx={gtx:.6} hd5870={hd:.6}");
    }

    #[test]
    fn tiny_problems_favour_cpu_everywhere() {
        for m in paper_machines() {
            let w = streaming(256);
            let cpu = estimate_time(&m.devices[0], &w).total;
            let gpu = estimate_time(&m.devices[1], &w).total;
            assert!(cpu < gpu, "{}: cpu={cpu:.6} gpu={gpu:.6}", m.name);
        }
    }

    #[test]
    fn gpu_crossover_exists_on_mc2() {
        // Somewhere between tiny and huge compute-bound workloads the GTX
        // 480 overtakes the Xeon — the paper's core "problem size matters"
        // observation.
        let m = mc2();
        let small = compute_bound(64);
        let large = compute_bound(1 << 18);
        let cpu_small = estimate_time(&m.devices[0], &small).total;
        let gpu_small = estimate_time(&m.devices[1], &small).total;
        let cpu_large = estimate_time(&m.devices[0], &large).total;
        let gpu_large = estimate_time(&m.devices[1], &large).total;
        assert!(cpu_small < gpu_small, "small sizes must favour the CPU");
        assert!(gpu_large < cpu_large, "large sizes must favour the GPU");
    }
}
