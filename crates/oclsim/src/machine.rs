//! A machine: a named collection of OpenCL devices.

use serde::{Deserialize, Serialize};

use crate::device::{DeviceId, DeviceProfile};

/// A heterogeneous target platform (what the paper calls a "target
/// architecture"): one host CPU device plus zero or more accelerators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Short identifier used in reports (`mc1`, `mc2`, …).
    pub name: String,
    /// Devices in fixed order; by convention device 0 is the CPU device.
    pub devices: Vec<DeviceProfile>,
    /// Constant extra overhead (µs) paid once per *multi-device* launch
    /// for cross-device coordination and result merging.
    pub multi_device_overhead_us: f64,
}

impl Machine {
    /// Create a machine, validating every device profile.
    ///
    /// # Panics
    /// Panics if a profile fails validation or the device list is empty —
    /// machines are constructed from code, so a bad profile is a bug.
    pub fn new(
        name: impl Into<String>,
        devices: Vec<DeviceProfile>,
        multi_device_overhead_us: f64,
    ) -> Self {
        let name = name.into();
        assert!(
            !devices.is_empty(),
            "machine `{name}` must have at least one device"
        );
        for d in &devices {
            if let Err(e) = d.validate() {
                panic!("machine `{name}`: {e}");
            }
        }
        Self {
            name,
            devices,
            multi_device_overhead_us,
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Device by id.
    pub fn device(&self, id: DeviceId) -> &DeviceProfile {
        &self.devices[id.0]
    }

    /// All device ids.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> {
        (0..self.devices.len()).map(DeviceId)
    }

    /// Id of the CPU (host) device, by convention index 0.
    pub fn cpu(&self) -> DeviceId {
        DeviceId(0)
    }

    /// Id of the first accelerator device, if any.
    pub fn first_gpu(&self) -> Option<DeviceId> {
        (self.devices.len() > 1).then_some(DeviceId(1))
    }

    /// Instantiate the runtime fault state for a chaos plan targeting
    /// this machine, validating the plan against it first (device indices
    /// in range, rates are probabilities, slowdowns ≥ 1).
    pub fn fault_state(&self, plan: &crate::fault::FaultPlan) -> Result<crate::FaultState, String> {
        plan.validate(self)?;
        Ok(plan.state(self.num_devices()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    #[test]
    fn paper_machines_have_three_devices() {
        // "two heterogeneous target platforms composed of three OpenCL
        // devices: two GPUs and two multi-core CPUs in a dual-socket
        // infrastructure [reported as a single OpenCL device]".
        assert_eq!(machines::mc1().num_devices(), 3);
        assert_eq!(machines::mc2().num_devices(), 3);
    }

    #[test]
    fn accessors_work() {
        let m = machines::mc1();
        assert_eq!(m.cpu(), DeviceId(0));
        assert_eq!(m.first_gpu(), Some(DeviceId(1)));
        assert_eq!(m.device_ids().count(), 3);
        assert!(m.device(DeviceId(0)).is_host_device());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_machine_panics() {
        Machine::new("empty", vec![], 0.0);
    }

    #[test]
    fn machine_roundtrips_serde() {
        let m = machines::mc2();
        let json = serde_json::to_string(&m).unwrap();
        let back: Machine = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
