//! A machine: a named collection of OpenCL devices.

use serde::{Deserialize, Serialize};

use crate::device::{DeviceId, DeviceProfile};

/// A heterogeneous target platform (what the paper calls a "target
/// architecture"): one host CPU device plus zero or more accelerators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Short identifier used in reports (`mc1`, `mc2`, …).
    pub name: String,
    /// Devices in fixed order; by convention device 0 is the CPU device.
    pub devices: Vec<DeviceProfile>,
    /// Constant extra overhead (µs) paid once per *multi-device* launch
    /// for cross-device coordination and result merging.
    pub multi_device_overhead_us: f64,
}

impl Machine {
    /// Create a machine, validating every device profile.
    ///
    /// # Panics
    /// Panics if a profile fails validation or the device list is empty —
    /// machines are constructed from code, so a bad profile is a bug.
    pub fn new(
        name: impl Into<String>,
        devices: Vec<DeviceProfile>,
        multi_device_overhead_us: f64,
    ) -> Self {
        let name = name.into();
        assert!(
            !devices.is_empty(),
            "machine `{name}` must have at least one device"
        );
        for d in &devices {
            if let Err(e) = d.validate() {
                panic!("machine `{name}`: {e}");
            }
        }
        Self {
            name,
            devices,
            multi_device_overhead_us,
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Device by id.
    pub fn device(&self, id: DeviceId) -> &DeviceProfile {
        &self.devices[id.0]
    }

    /// All device ids.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> {
        (0..self.devices.len()).map(DeviceId)
    }

    /// Id of the CPU (host) device, by convention index 0.
    pub fn cpu(&self) -> DeviceId {
        DeviceId(0)
    }

    /// Id of the first accelerator device, if any.
    pub fn first_gpu(&self) -> Option<DeviceId> {
        (self.devices.len() > 1).then_some(DeviceId(1))
    }

    /// A stable 64-bit fingerprint of the full hardware description:
    /// machine name, device order, and every profile field (floats by
    /// exact bit pattern). Two machines agree on their fingerprint iff
    /// simulated timings on them are interchangeable, so training data
    /// and predictors are tagged with it — renaming a registry entry or
    /// nudging a single cost coefficient changes the fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.str(&self.name);
        h.f64(self.multi_device_overhead_us);
        h.u64(self.devices.len() as u64);
        for d in &self.devices {
            h.str(&d.name);
            h.u64(match d.class {
                crate::DeviceClass::Cpu => 0,
                crate::DeviceClass::GpuSimt => 1,
                crate::DeviceClass::GpuVliw => 2,
            });
            h.u64(u64::from(d.compute_units));
            h.u64(u64::from(d.lanes_per_unit));
            h.u64(u64::from(d.ilp_width));
            h.f64(d.clock_ghz);
            for (_, v) in d.cost.as_named() {
                h.f64(v);
            }
            h.f64(d.mem_bandwidth_gbs);
            h.f64(d.uncoalesced_efficiency);
            match d.link_bandwidth_gbs {
                None => h.u64(0),
                Some(bw) => {
                    h.u64(1);
                    h.f64(bw);
                }
            }
            h.f64(d.link_latency_us);
            h.f64(d.launch_overhead_us);
            h.f64(d.divergence_penalty);
            h.f64(d.saturation_items);
            h.f64(d.base_ilp_fill);
        }
        h.finish()
    }

    /// Instantiate the runtime fault state for a chaos plan targeting
    /// this machine, validating the plan against it first (device indices
    /// in range, rates are probabilities, slowdowns ≥ 1).
    pub fn fault_state(&self, plan: &crate::fault::FaultPlan) -> Result<crate::FaultState, String> {
        plan.validate(self)?;
        Ok(plan.state(self.num_devices()))
    }
}

/// FNV-1a, 64 bit — tiny, dependency-free, stable across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.byte(b);
        }
    }

    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    #[test]
    fn paper_machines_have_three_devices() {
        // "two heterogeneous target platforms composed of three OpenCL
        // devices: two GPUs and two multi-core CPUs in a dual-socket
        // infrastructure [reported as a single OpenCL device]".
        assert_eq!(machines::mc1().num_devices(), 3);
        assert_eq!(machines::mc2().num_devices(), 3);
    }

    #[test]
    fn accessors_work() {
        let m = machines::mc1();
        assert_eq!(m.cpu(), DeviceId(0));
        assert_eq!(m.first_gpu(), Some(DeviceId(1)));
        assert_eq!(m.device_ids().count(), 3);
        assert!(m.device(DeviceId(0)).is_host_device());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_machine_panics() {
        Machine::new("empty", vec![], 0.0);
    }

    #[test]
    fn fingerprint_tracks_hardware_identity() {
        let m = machines::mc2();
        assert_eq!(m.fingerprint(), machines::mc2().fingerprint());
        assert_ne!(m.fingerprint(), machines::mc1().fingerprint());

        // A rename changes it ...
        let mut renamed = m.clone();
        renamed.name = "mc2-prime".into();
        assert_ne!(renamed.fingerprint(), m.fingerprint());

        // ... and so does nudging one cost coefficient.
        let mut nudged = m.clone();
        nudged.devices[1].cost.float_op += 1e-9;
        assert_ne!(nudged.fingerprint(), m.fingerprint());
    }

    #[test]
    fn machine_roundtrips_serde() {
        let m = machines::mc2();
        let json = serde_json::to_string(&m).unwrap();
        let back: Machine = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
