//! Machines as data: load [`Machine`] definitions from JSON profiles.
//!
//! A *profile* is a JSON document describing one machine — its registry
//! name, its devices (full [`DeviceProfile`] field set each), and the
//! multi-device coordination overhead — plus a `schema_version` marker so
//! old tooling fails loudly on new profiles instead of misreading them.
//! The stock paper machines (`mc1`, `mc2`) and the synthetic zoo under
//! `profiles/` are all embedded into the crate and load through the exact
//! same path as a user-supplied file, so the data path is regression-locked
//! by every existing mc1/mc2 test.
//!
//! Everything that can be wrong with a profile is a typed
//! [`RegistryError`], not a panic: malformed JSON, a schema-version
//! mismatch, an unknown device kind, non-positive op costs, an empty
//! device list, out-of-range profile numbers, and duplicate machine names
//! within one registry.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize, Value};

use crate::machine::Machine;

/// Version of the on-disk profile schema. Bump when the JSON layout of
/// [`crate::DeviceProfile`] / [`Machine`] changes incompatibly.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// Everything that can go wrong loading or registering a machine profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The file could not be read at all.
    Io { path: PathBuf, detail: String },
    /// The text is not valid JSON, or a field has the wrong shape.
    Parse { source: String, detail: String },
    /// The profile was written under a different schema version.
    SchemaVersion {
        source: String,
        found: Option<u64>,
        expected: u32,
    },
    /// A device's `class` is not one of the known kinds.
    UnknownDeviceClass {
        machine: String,
        device: String,
        found: String,
    },
    /// An op-cost entry is zero, negative, or non-finite.
    NonPositiveCost {
        machine: String,
        device: String,
        op: String,
        /// `{:?}`-formatted offending value (kept as text so the error is `Eq`).
        value: String,
    },
    /// A device profile failed numeric validation.
    InvalidDevice {
        machine: String,
        device: String,
        detail: String,
    },
    /// The machine itself is malformed (empty name, bad overhead, …).
    InvalidMachine { machine: String, detail: String },
    /// The machine declares no devices at all.
    NoDevices { machine: String },
    /// A machine with this registry name is already registered.
    DuplicateMachine { name: String },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io { path, detail } => {
                write!(f, "cannot read profile `{}`: {detail}", path.display())
            }
            RegistryError::Parse { source, detail } => {
                write!(f, "profile `{source}` is malformed: {detail}")
            }
            RegistryError::SchemaVersion {
                source,
                found,
                expected,
            } => match found {
                Some(v) => write!(
                    f,
                    "profile `{source}` has schema_version {v}, this build expects {expected}"
                ),
                None => write!(
                    f,
                    "profile `{source}` is missing schema_version (expected {expected})"
                ),
            },
            RegistryError::UnknownDeviceClass {
                machine,
                device,
                found,
            } => write!(
                f,
                "machine `{machine}`, device `{device}`: unknown device class `{found}` \
                 (expected Cpu, GpuSimt, or GpuVliw)"
            ),
            RegistryError::NonPositiveCost {
                machine,
                device,
                op,
                value,
            } => write!(
                f,
                "machine `{machine}`, device `{device}`: op cost `{op}` must be a positive \
                 cycle count, got {value}"
            ),
            RegistryError::InvalidDevice {
                machine,
                device,
                detail,
            } => write!(f, "machine `{machine}`, device `{device}`: {detail}"),
            RegistryError::InvalidMachine { machine, detail } => {
                write!(f, "machine `{machine}`: {detail}")
            }
            RegistryError::NoDevices { machine } => {
                write!(f, "machine `{machine}` declares no devices")
            }
            RegistryError::DuplicateMachine { name } => {
                write!(f, "a machine named `{name}` is already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Parse and fully validate one machine profile. `source` is a label for
/// error messages (a file name or registry entry name).
pub fn machine_from_profile_str(source: &str, json: &str) -> Result<Machine, RegistryError> {
    let parse = |detail: String| RegistryError::Parse {
        source: source.to_string(),
        detail,
    };
    let root: Value = serde_json::from_str(json).map_err(|e| parse(e.to_string()))?;

    // Schema gate first: a profile from a future layout should fail on the
    // version marker, not on whatever field happens to confuse serde.
    match root.get("schema_version").cloned() {
        Some(Value::U64(v)) if v == u64::from(PROFILE_SCHEMA_VERSION) => {}
        Some(Value::U64(v)) => {
            return Err(RegistryError::SchemaVersion {
                source: source.to_string(),
                found: Some(v),
                expected: PROFILE_SCHEMA_VERSION,
            })
        }
        Some(Value::I64(v)) => {
            return Err(RegistryError::SchemaVersion {
                source: source.to_string(),
                found: u64::try_from(v).ok(),
                expected: PROFILE_SCHEMA_VERSION,
            })
        }
        _ => {
            return Err(RegistryError::SchemaVersion {
                source: source.to_string(),
                found: None,
                expected: PROFILE_SCHEMA_VERSION,
            })
        }
    }

    let machine_name = match root.get("name") {
        Some(Value::Str(s)) if !s.is_empty() => s.clone(),
        Some(Value::Str(_)) => {
            return Err(RegistryError::InvalidMachine {
                machine: source.to_string(),
                detail: "machine name must not be empty".into(),
            })
        }
        _ => return Err(parse("missing string field `name`".into())),
    };

    // Give the device kind its own typed error before handing the tree to
    // serde, which would only report a generic unknown-variant string.
    let devices = match root.get("devices") {
        Some(Value::Seq(devs)) => devs,
        _ => return Err(parse("missing array field `devices`".into())),
    };
    if devices.is_empty() {
        return Err(RegistryError::NoDevices {
            machine: machine_name,
        });
    }
    for (idx, dev) in devices.iter().enumerate() {
        let dev_name = match dev.get("name") {
            Some(Value::Str(s)) if !s.is_empty() => s.clone(),
            _ => format!("#{idx}"),
        };
        match dev.get("class") {
            Some(Value::Str(c)) if matches!(c.as_str(), "Cpu" | "GpuSimt" | "GpuVliw") => {}
            Some(Value::Str(c)) => {
                return Err(RegistryError::UnknownDeviceClass {
                    machine: machine_name,
                    device: dev_name,
                    found: c.clone(),
                })
            }
            other => {
                return Err(RegistryError::UnknownDeviceClass {
                    machine: machine_name,
                    device: dev_name,
                    found: match other {
                        Some(_) => "<not a string>".into(),
                        None => "<missing>".into(),
                    },
                })
            }
        }
    }

    // Shapes are right; let serde build the struct (it ignores the extra
    // `schema_version` key), then run the numeric validators.
    let machine =
        Machine::from_value(&root).map_err(|e| parse(format!("cannot decode machine: {e}")))?;
    validate_machine(&machine)?;
    Ok(machine)
}

/// Validate an already-constructed machine with the same typed errors the
/// JSON path produces — used by [`MachineRegistry::register`] so machines
/// built in code meet the same bar as machines loaded from disk.
pub fn validate_machine(machine: &Machine) -> Result<(), RegistryError> {
    if machine.name.is_empty() {
        return Err(RegistryError::InvalidMachine {
            machine: machine.name.clone(),
            detail: "machine name must not be empty".into(),
        });
    }
    if machine.devices.is_empty() {
        return Err(RegistryError::NoDevices {
            machine: machine.name.clone(),
        });
    }
    if !machine.multi_device_overhead_us.is_finite() || machine.multi_device_overhead_us < 0.0 {
        return Err(RegistryError::InvalidMachine {
            machine: machine.name.clone(),
            detail: format!(
                "multi_device_overhead_us must be finite and non-negative, got {:?}",
                machine.multi_device_overhead_us
            ),
        });
    }
    for d in &machine.devices {
        if let Err((op, v)) = d.cost.validate() {
            return Err(RegistryError::NonPositiveCost {
                machine: machine.name.clone(),
                device: d.name.clone(),
                op: op.to_string(),
                value: format!("{v:?}"),
            });
        }
        if let Err(detail) = d.validate() {
            return Err(RegistryError::InvalidDevice {
                machine: machine.name.clone(),
                device: d.name.clone(),
                detail,
            });
        }
    }
    Ok(())
}

/// Serialize a machine to profile JSON (schema version included) such that
/// loading it back yields a bit-identical machine: floats are written with
/// shortest-round-trip formatting.
pub fn machine_to_profile_json(machine: &Machine) -> String {
    let mut fields = vec![(
        "schema_version".to_string(),
        Value::U64(u64::from(PROFILE_SCHEMA_VERSION)),
    )];
    match machine.to_value() {
        Value::Map(entries) => fields.extend(entries),
        other => fields.push(("machine".to_string(), other)),
    }
    serde_json::to_string_pretty(&Value::Map(fields)).expect("profile serialization cannot fail")
}

/// A named collection of validated machines.
///
/// The registry is the single entry point for machine definitions: the
/// embedded stock machines and zoo profiles load through
/// [`MachineRegistry::builtin`], external files through
/// [`MachineRegistry::load_file`] / [`MachineRegistry::load_dir`], and
/// in-code machines through [`MachineRegistry::register`] — all with the
/// same validation and duplicate-name detection.
#[derive(Debug, Clone, Default)]
pub struct MachineRegistry {
    machines: Vec<Machine>,
}

/// Embedded profile sources: the paper machines plus the synthetic zoo.
/// Kept in one place so `builtin()` and the docs agree on the inventory.
pub const EMBEDDED_PROFILES: &[(&str, &str)] = &[
    ("mc1.json", include_str!("../../../profiles/mc1.json")),
    ("mc2.json", include_str!("../../../profiles/mc2.json")),
    (
        "igpu_laptop.json",
        include_str!("../../../profiles/igpu_laptop.json"),
    ),
    (
        "gpu_server.json",
        include_str!("../../../profiles/gpu_server.json"),
    ),
    (
        "biglittle.json",
        include_str!("../../../profiles/biglittle.json"),
    ),
    (
        "slow_interconnect.json",
        include_str!("../../../profiles/slow_interconnect.json"),
    ),
    (
        "cpu_only.json",
        include_str!("../../../profiles/cpu_only.json"),
    ),
];

impl MachineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry of embedded machines: `mc1`, `mc2`, and the zoo.
    ///
    /// # Panics
    /// Panics if an embedded profile fails to load — the profiles ship
    /// inside the crate and are covered by tests, so that is a build bug.
    pub fn builtin() -> Self {
        let mut reg = Self::new();
        for (source, json) in EMBEDDED_PROFILES {
            reg.load_str(source, json)
                .unwrap_or_else(|e| panic!("embedded profile {source} must load: {e}"));
        }
        reg
    }

    /// Register an already-constructed machine after validating it.
    pub fn register(&mut self, machine: Machine) -> Result<&Machine, RegistryError> {
        validate_machine(&machine)?;
        if self.get(&machine.name).is_some() {
            return Err(RegistryError::DuplicateMachine {
                name: machine.name.clone(),
            });
        }
        self.machines.push(machine);
        Ok(self.machines.last().unwrap_or_else(|| unreachable!()))
    }

    /// Parse, validate, and register a profile from a JSON string.
    pub fn load_str(&mut self, source: &str, json: &str) -> Result<&Machine, RegistryError> {
        let machine = machine_from_profile_str(source, json)?;
        self.register(machine)
    }

    /// Load one profile file.
    pub fn load_file(&mut self, path: impl AsRef<Path>) -> Result<&Machine, RegistryError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| RegistryError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
        self.load_str(&path.display().to_string(), &text)
    }

    /// Load every `*.json` profile in a directory (sorted by file name, so
    /// registration order — and duplicate detection — is deterministic).
    /// Returns how many machines were added.
    pub fn load_dir(&mut self, dir: impl AsRef<Path>) -> Result<usize, RegistryError> {
        let dir = dir.as_ref();
        let entries = std::fs::read_dir(dir).map_err(|e| RegistryError::Io {
            path: dir.to_path_buf(),
            detail: e.to_string(),
        })?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        let before = self.machines.len();
        for p in paths {
            self.load_file(&p)?;
        }
        Ok(self.machines.len() - before)
    }

    /// Machine by registry name.
    pub fn get(&self, name: &str) -> Option<&Machine> {
        self.machines.iter().find(|m| m.name == name)
    }

    /// All registered machines, in registration order.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.machines.iter().map(|m| m.name.as_str()).collect()
    }

    /// Number of registered machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    #[test]
    fn builtin_contains_paper_machines_and_zoo() {
        let reg = MachineRegistry::builtin();
        assert_eq!(reg.len(), EMBEDDED_PROFILES.len());
        for name in [
            "mc1",
            "mc2",
            "igpu_laptop",
            "gpu_server",
            "biglittle",
            "slow_interconnect",
            "cpu_only",
        ] {
            let m = reg.get(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(m.name, name);
            validate_machine(m).unwrap_or_else(|e| panic!("{e}"));
        }
        // The zoo spans device counts 1 through 5.
        let counts: Vec<usize> = ["cpu_only", "igpu_laptop", "mc1", "gpu_server"]
            .iter()
            .map(|n| reg.get(n).unwrap().num_devices())
            .collect();
        assert_eq!(counts, vec![1, 2, 3, 5]);
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let err = machine_from_profile_str("bad.json", "{ not json").unwrap_err();
        assert!(matches!(err, RegistryError::Parse { .. }), "{err}");
    }

    #[test]
    fn schema_version_is_gated() {
        let err = machine_from_profile_str("v9.json", r#"{"schema_version": 9}"#).unwrap_err();
        assert_eq!(
            err,
            RegistryError::SchemaVersion {
                source: "v9.json".into(),
                found: Some(9),
                expected: PROFILE_SCHEMA_VERSION,
            }
        );
        let err = machine_from_profile_str("none.json", r#"{"name": "x"}"#).unwrap_err();
        assert!(
            matches!(err, RegistryError::SchemaVersion { found: None, .. }),
            "{err}"
        );
    }

    #[test]
    fn unknown_device_class_is_typed() {
        let json = machine_to_profile_json(&machines::mc1()).replace("\"GpuVliw\"", "\"Fpga\"");
        let err = machine_from_profile_str("mc1.json", &json).unwrap_err();
        match err {
            RegistryError::UnknownDeviceClass {
                machine,
                device,
                found,
            } => {
                assert_eq!(machine, "mc1");
                assert_eq!(device, "ATI Radeon HD 5870");
                assert_eq!(found, "Fpga");
            }
            other => panic!("expected UnknownDeviceClass, got {other}"),
        }
    }

    #[test]
    fn non_positive_costs_are_typed() {
        let mut m = machines::mc2();
        m.devices[1].cost.transcendental = 0.0;
        let err = machine_from_profile_str("mc2.json", &machine_to_profile_json(&m)).unwrap_err();
        match err {
            RegistryError::NonPositiveCost {
                machine,
                device,
                op,
                ..
            } => {
                assert_eq!(machine, "mc2");
                assert_eq!(device, "NVIDIA GeForce GTX 480");
                assert_eq!(op, "transcendental");
            }
            other => panic!("expected NonPositiveCost, got {other}"),
        }
    }

    #[test]
    fn zero_devices_is_typed() {
        let json = r#"{"schema_version": 1, "name": "husk", "devices": [],
                       "multi_device_overhead_us": 1.0}"#;
        assert_eq!(
            machine_from_profile_str("husk.json", json).unwrap_err(),
            RegistryError::NoDevices {
                machine: "husk".into()
            }
        );
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut reg = MachineRegistry::new();
        reg.register(machines::mc1()).unwrap();
        assert_eq!(
            reg.register(machines::mc1()).unwrap_err(),
            RegistryError::DuplicateMachine { name: "mc1".into() }
        );
    }

    #[test]
    fn out_of_range_profile_numbers_are_typed() {
        let mut m = machines::mc1();
        m.devices[0].clock_ghz = -2.0;
        let err = machine_from_profile_str("mc1.json", &machine_to_profile_json(&m)).unwrap_err();
        assert!(
            matches!(err, RegistryError::InvalidDevice { ref machine, .. } if machine == "mc1"),
            "{err}"
        );
    }

    #[test]
    fn every_embedded_profile_roundtrips_bit_identically() {
        for (source, json) in EMBEDDED_PROFILES {
            let loaded = machine_from_profile_str(source, json)
                .unwrap_or_else(|e| panic!("load {source}: {e}"));
            let re_serialized = machine_to_profile_json(&loaded);
            let re_loaded = machine_from_profile_str(source, &re_serialized)
                .unwrap_or_else(|e| panic!("reload {source}: {e}"));
            assert_eq!(loaded, re_loaded, "round-trip changed {source}");
            assert_eq!(
                loaded.fingerprint(),
                re_loaded.fingerprint(),
                "round-trip changed the fingerprint of {source}"
            );
        }
    }

    #[test]
    fn load_dir_reads_the_shipped_profiles() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("profiles");
        let mut reg = MachineRegistry::new();
        let n = reg.load_dir(&dir).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(n, EMBEDDED_PROFILES.len());
        // Disk and embedded copies agree exactly.
        let builtin = MachineRegistry::builtin();
        for m in reg.machines() {
            assert_eq!(Some(m), builtin.get(&m.name));
        }
    }
}
