//! The analytic device cost model.
//!
//! Converts a chunk's dynamic operation counts (measured exactly by the
//! `hetpart-inspire` VM, or extrapolated from a sampled run) into a
//! simulated wall-clock time on a given [`DeviceProfile`], using a
//! roofline-style formulation:
//!
//! ```text
//! t = launch + transfer_in + max(t_alu, t_mem) + transfer_out
//! ```
//!
//! with the throughput terms degraded by lane under-utilization, SIMT
//! divergence, VLIW slot under-fill, and memory-coalescing efficiency.
//! Transfers are included in every measurement, following the paper
//! (which follows Gregg & Hazelwood's "Where is the data?").

use serde::{Deserialize, Serialize};

use crate::device::{DeviceClass, DeviceProfile};

/// Dynamic shape of one kernel chunk, the cost-model input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadShape {
    /// Work-items in the chunk.
    pub items: u64,
    /// Dynamic integer ALU operations.
    pub int_ops: u64,
    /// Dynamic float ALU operations.
    pub float_ops: u64,
    /// Dynamic transcendental operations.
    pub transcendental_ops: u64,
    /// Dynamic comparisons.
    pub cmp_ops: u64,
    /// Dynamic conditional branches.
    pub branch_ops: u64,
    /// Dynamic moves/constants/other.
    pub other_ops: u64,
    /// Dynamic buffer loads (elements).
    pub loads: u64,
    /// Dynamic buffer stores (elements).
    pub stores: u64,
    /// Bytes transferred host→device before the chunk runs.
    pub bytes_in: u64,
    /// Bytes transferred device→host after the chunk runs.
    pub bytes_out: u64,
    /// Control-flow divergence estimate in `[0, 1]` (coefficient of
    /// variation of per-item instruction counts, clamped).
    pub divergence: f64,
    /// Fraction of memory accesses indexed directly by the global id
    /// (coalescing-friendly), in `[0, 1]`.
    pub coalesced_fraction: f64,
}

impl WorkloadShape {
    /// An empty workload (zero items).
    pub fn empty() -> Self {
        Self {
            items: 0,
            int_ops: 0,
            float_ops: 0,
            transcendental_ops: 0,
            cmp_ops: 0,
            branch_ops: 0,
            other_ops: 0,
            loads: 0,
            stores: 0,
            bytes_in: 0,
            bytes_out: 0,
            divergence: 0.0,
            coalesced_fraction: 1.0,
        }
    }

    /// Total ALU-class operations.
    pub fn alu_ops(&self) -> u64 {
        self.int_ops + self.float_ops + self.transcendental_ops
    }

    /// Bytes touched in device memory by loads and stores (4-byte
    /// elements).
    pub fn mem_bytes(&self) -> u64 {
        4 * (self.loads + self.stores)
    }
}

/// Simulated time, with the individual terms exposed for reports and
/// tests. All values in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    pub launch: f64,
    pub xfer_in: f64,
    /// ALU-limited compute time (before taking the roofline max).
    pub alu: f64,
    /// Memory-limited compute time (before taking the roofline max).
    pub mem: f64,
    /// `max(alu, mem)`.
    pub compute: f64,
    pub xfer_out: f64,
    /// Sum of launch, transfer-in, compute, transfer-out.
    pub total: f64,
}

impl TimeBreakdown {
    /// The breakdown with every term scaled by `factor` — how a degraded
    /// (thermally throttled, contended) device is modeled: the work is
    /// the same, the whole pipeline runs `factor`× slower. Used by the
    /// fault-injection layer ([`crate::fault`]); `factor` is clamped to
    /// at least 1 so a "slowdown" can never speed a device up.
    pub fn scaled(&self, factor: f64) -> Self {
        let f = factor.max(1.0);
        Self {
            launch: self.launch * f,
            xfer_in: self.xfer_in * f,
            alu: self.alu * f,
            mem: self.mem * f,
            compute: self.compute * f,
            xfer_out: self.xfer_out * f,
            total: self.total * f,
        }
    }
}

const US: f64 = 1e-6;
const GB: f64 = 1e9;

/// Effective ALU throughput (cycles per second) the model grants workload
/// `w` on `dev`: the peak issue rate degraded by VLIW slot under-fill,
/// SIMT divergence, and lane under-saturation.
///
/// Exposed separately because it depends only on the device *geometry*
/// and the workload's op-count mix — not on [`crate::OpCosts`] — which is
/// exactly what lets [`crate::calibrate`] invert the ALU term of the
/// model: `t_alu = Σ count_op · cost_op / effective_alu_throughput` is
/// linear in the six cost coefficients.
pub fn effective_alu_throughput(dev: &DeviceProfile, w: &WorkloadShape) -> f64 {
    let divergence = w.divergence.clamp(0.0, 1.0);

    // VLIW slot fill: scalar untuned code fills slot 0 always, and a
    // mix-dependent fraction of the remaining slots. Heavy float ALU
    // content packs better than branchy integer code; divergence breaks
    // clause packing further.
    let ilp_factor = match dev.class {
        DeviceClass::GpuVliw => {
            let alu = (w.alu_ops() + w.cmp_ops).max(1) as f64;
            let float_fraction = w.float_ops as f64 / alu;
            let fill = 1.0
                + dev.base_ilp_fill
                    * f64::from(dev.ilp_width - 1)
                    * float_fraction
                    * (1.0 - divergence);
            fill / f64::from(dev.ilp_width)
        }
        DeviceClass::Cpu | DeviceClass::GpuSimt => 1.0,
    };

    // Lock-step divergence: lanes idle while the other path executes.
    let divergence_factor = 1.0 / (1.0 + dev.divergence_penalty * divergence);

    // Under-saturation: fewer items than the device needs to fill its
    // lanes/pipelines leaves throughput on the table.
    let utilization = (w.items as f64 / dev.saturation_items).min(1.0);

    let peak_cycles_per_sec = dev.total_lanes() * f64::from(dev.ilp_width) * dev.clock_ghz * 1e9;
    peak_cycles_per_sec * ilp_factor * divergence_factor * utilization
}

/// Estimate the execution time of a chunk on a device.
///
/// A zero-item workload costs nothing (the device is not used at all — no
/// launch is issued for it).
pub fn estimate_time(dev: &DeviceProfile, w: &WorkloadShape) -> TimeBreakdown {
    if w.items == 0 {
        return TimeBreakdown::default();
    }
    let coalesced = w.coalesced_fraction.clamp(0.0, 1.0);

    // --- ALU term ---------------------------------------------------
    let cycles = w.int_ops as f64 * dev.cost.int_op
        + w.float_ops as f64 * dev.cost.float_op
        + w.transcendental_ops as f64 * dev.cost.transcendental
        + w.cmp_ops as f64 * dev.cost.cmp
        + w.branch_ops as f64 * dev.cost.branch
        + w.other_ops as f64 * dev.cost.other;

    let alu = cycles / effective_alu_throughput(dev, w);

    // --- Memory term ------------------------------------------------
    let utilization = (w.items as f64 / dev.saturation_items).min(1.0);
    let coalesce_eff = coalesced + (1.0 - coalesced) * dev.uncoalesced_efficiency;
    let mem_bw = dev.mem_bandwidth_gbs * GB * coalesce_eff * utilization.max(0.05);
    let mem = w.mem_bytes() as f64 / mem_bw;

    let compute = alu.max(mem);

    // --- Transfers and launch ---------------------------------------
    let (xfer_in, xfer_out) = match dev.link_bandwidth_gbs {
        None => (0.0, 0.0),
        Some(bw) => {
            let t_in = if w.bytes_in > 0 {
                dev.link_latency_us * US + w.bytes_in as f64 / (bw * GB)
            } else {
                0.0
            };
            let t_out = if w.bytes_out > 0 {
                dev.link_latency_us * US + w.bytes_out as f64 / (bw * GB)
            } else {
                0.0
            };
            (t_in, t_out)
        }
    };
    let launch = dev.launch_overhead_us * US;

    let total = launch + xfer_in + compute + xfer_out;
    TimeBreakdown {
        launch,
        xfer_in,
        alu,
        mem,
        compute,
        xfer_out,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    fn uniform(items: u64, flops_per_item: u64, bytes_per_item: u64) -> WorkloadShape {
        WorkloadShape {
            items,
            int_ops: 2 * items,
            float_ops: flops_per_item * items,
            transcendental_ops: 0,
            cmp_ops: items,
            branch_ops: items,
            other_ops: items,
            loads: bytes_per_item / 4 * items,
            stores: items,
            bytes_in: bytes_per_item * items,
            bytes_out: 4 * items,
            divergence: 0.0,
            coalesced_fraction: 1.0,
        }
    }

    #[test]
    fn zero_items_cost_nothing() {
        let d = machines::mc1().devices[0].clone();
        let t = estimate_time(&d, &WorkloadShape::empty());
        assert_eq!(t.total, 0.0);
    }

    #[test]
    fn total_is_sum_of_terms() {
        let d = machines::mc2().devices[1].clone();
        let t = estimate_time(&d, &uniform(1 << 16, 100, 16));
        let sum = t.launch + t.xfer_in + t.compute + t.xfer_out;
        assert!((t.total - sum).abs() < 1e-15);
        assert_eq!(t.compute, t.alu.max(t.mem));
    }

    #[test]
    fn host_device_pays_no_transfer() {
        let d = machines::mc1().devices[0].clone();
        let t = estimate_time(&d, &uniform(1 << 16, 100, 16));
        assert_eq!(t.xfer_in, 0.0);
        assert_eq!(t.xfer_out, 0.0);
    }

    #[test]
    fn gpu_pays_transfer_proportional_to_bytes() {
        let d = machines::mc2().devices[1].clone();
        let small = estimate_time(&d, &uniform(1 << 10, 10, 16));
        let large = estimate_time(&d, &uniform(1 << 20, 10, 16));
        assert!(large.xfer_in > small.xfer_in * 100.0);
    }

    #[test]
    fn time_is_monotone_in_work() {
        let d = machines::mc2().devices[0].clone();
        let mut prev = 0.0;
        for items in [1u64 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18] {
            let t = estimate_time(&d, &uniform(items, 50, 16)).total;
            assert!(t > prev, "time must grow with items: {t} vs {prev}");
            prev = t;
        }
    }

    #[test]
    fn divergence_slows_gpus_more_than_cpu() {
        let cpu = machines::mc2().devices[0].clone();
        let gpu = machines::mc2().devices[1].clone();
        let base = uniform(1 << 18, 200, 8);
        let mut div = base;
        div.divergence = 1.0;
        let cpu_ratio = estimate_time(&cpu, &div).compute / estimate_time(&cpu, &base).compute;
        let gpu_ratio = estimate_time(&gpu, &div).compute / estimate_time(&gpu, &base).compute;
        assert!(
            gpu_ratio > cpu_ratio * 1.5,
            "gpu={gpu_ratio:.2} cpu={cpu_ratio:.2}"
        );
    }

    #[test]
    fn vliw_benefits_from_float_heavy_mix() {
        let hd = machines::mc1().devices[1].clone();
        // Same total op count; one mix is float-heavy, the other int-heavy.
        let mut float_heavy = uniform(1 << 18, 100, 8);
        let mut int_heavy = float_heavy;
        int_heavy.int_ops = float_heavy.float_ops;
        int_heavy.float_ops = 2 * (1 << 18);
        float_heavy.int_ops = 2 * (1 << 18);
        let tf = estimate_time(&hd, &float_heavy).alu;
        let ti = estimate_time(&hd, &int_heavy).alu;
        assert!(
            tf < ti,
            "float-heavy should pack VLIW slots better: {tf} vs {ti}"
        );
    }

    #[test]
    fn uncoalesced_access_wastes_gpu_bandwidth() {
        let gpu = machines::mc2().devices[1].clone();
        let base = uniform(1 << 20, 2, 32);
        let mut gathered = base;
        gathered.coalesced_fraction = 0.0;
        let t_c = estimate_time(&gpu, &base).mem;
        let t_g = estimate_time(&gpu, &gathered).mem;
        assert!(
            t_g > 4.0 * t_c,
            "gather must be much slower: {t_g} vs {t_c}"
        );
    }

    #[test]
    fn under_saturation_hurts_wide_devices() {
        let gpu = machines::mc2().devices[1].clone();
        // 64 items on a 480-lane GPU: per-item cost must be far higher than
        // in a saturated launch.
        let small = estimate_time(&gpu, &uniform(64, 100, 16));
        let big = estimate_time(&gpu, &uniform(1 << 20, 100, 16));
        let per_item_small = small.compute / 64.0;
        let per_item_big = big.compute / (1 << 20) as f64;
        assert!(per_item_small > 10.0 * per_item_big);
    }

    #[test]
    fn breakdown_serializes() {
        let d = machines::mc1().devices[1].clone();
        let t = estimate_time(&d, &uniform(1024, 10, 8));
        let js = serde_json::to_string(&t).unwrap();
        let back: TimeBreakdown = serde_json::from_str(&js).unwrap();
        assert!((t.total - back.total).abs() <= 1e-12 * t.total.abs());
        assert!((t.compute - back.compute).abs() <= 1e-12 * t.compute.abs());
    }
}
