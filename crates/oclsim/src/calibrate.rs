//! Cost-model calibration: fit a device's [`OpCosts`] from micro-bench
//! timings by least squares.
//!
//! The cost model's ALU term is linear in the six per-op cost
//! coefficients:
//!
//! ```text
//! t_alu(w) = Σ_op  count_op(w) · cost_op  /  effective_alu_throughput(dev, w)
//! ```
//!
//! and the throughput factor depends only on the device *geometry* (clock,
//! lanes, VLIW width, saturation) and the op-count mix — both known
//! without knowing the costs. So timing a set of register-resident
//! micro-benchmarks with diverse op mixes (the per-op counters are exactly
//! what the `hetpart-inspire` VM already collects per launch) gives one
//! linear equation per benchmark, and an over-determined system solved by
//! least squares recovers the cost table.
//!
//! [`calibrate_device`] closes the loop used by the tests, the example,
//! and CI: simulate the micro-bench timings with the device's true costs,
//! fit from the timings alone, and compare — the fit must recover the
//! table within tolerance (to machine precision on noise-free timings,
//! within a few percent under measurement noise).

use crate::device::{DeviceProfile, OpCosts};
use crate::model::{effective_alu_throughput, estimate_time, WorkloadShape};

/// Number of fitted coefficients (the six fields of [`OpCosts`]).
pub const NUM_COEFFS: usize = 6;

/// Everything that can go wrong fitting a cost table.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrateError {
    /// Fewer usable timings than coefficients to fit.
    Underdetermined { rows: usize, needed: usize },
    /// The op mixes are not diverse enough to separate the coefficients.
    Singular,
    /// A timing row is unusable for the linear fit.
    BadTiming { index: usize, detail: String },
    /// The best fit assigns a non-positive cost — the timings are not
    /// explained by the model (wrong device geometry, corrupt data).
    NonPositiveFit { op: &'static str, value: f64 },
}

impl std::fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrateError::Underdetermined { rows, needed } => write!(
                f,
                "calibration needs at least {needed} independent timings, got {rows}"
            ),
            CalibrateError::Singular => write!(
                f,
                "calibration workloads do not span the op-cost space (singular system)"
            ),
            CalibrateError::BadTiming { index, detail } => {
                write!(f, "timing #{index} is unusable: {detail}")
            }
            CalibrateError::NonPositiveFit { op, value } => write!(
                f,
                "fit assigned op cost `{op}` = {value}, which is not positive — \
                 the timings are inconsistent with the device geometry"
            ),
        }
    }
}

impl std::error::Error for CalibrateError {}

/// The standard micro-bench suite for one device: register-resident
/// (no loads/stores, no transfers), fully coalesced, divergence-free, and
/// saturated (items well past `saturation_items`), so the observed time is
/// exactly `launch + t_alu`. Twelve mixes: six dominated by one op class
/// each, six blended — comfortably over-determined for six coefficients.
pub fn calibration_workloads(dev: &DeviceProfile) -> Vec<WorkloadShape> {
    // Saturate the device (utilization exactly 1) AND run long enough that
    // the ALU term dwarfs the fixed launch overhead — otherwise relative
    // timing noise on `launch + t_alu` is amplified when the known launch
    // cost is subtracted out.
    let items = (dev.saturation_items.ceil() as u64).max(1).max(1 << 18) * 4;
    // (int, float, transcendental, cmp, branch, other) per item. The first
    // six rows are nearly one-hot so each coefficient is pinned almost
    // directly; the blends over-determine the system against noise.
    const MIXES: [[u64; NUM_COEFFS]; 12] = [
        [200, 1, 1, 1, 1, 1],  // integer-dominated
        [1, 200, 1, 1, 1, 1],  // float-dominated
        [1, 1, 100, 1, 1, 1],  // transcendental-dominated
        [1, 1, 1, 150, 1, 1],  // compare-dominated
        [1, 1, 1, 1, 150, 1],  // branch-dominated
        [1, 1, 1, 1, 1, 200],  // move/other-dominated
        [16, 32, 4, 8, 8, 12], // float-leaning blend
        [40, 10, 2, 20, 5, 6], // int/cmp blend
        [8, 50, 10, 4, 12, 20],
        [30, 30, 0, 10, 10, 10],
        [5, 5, 25, 5, 25, 5],
        [20, 0, 0, 40, 0, 40],
    ];
    MIXES
        .iter()
        .map(|m| WorkloadShape {
            items,
            int_ops: m[0] * items,
            float_ops: m[1] * items,
            transcendental_ops: m[2] * items,
            cmp_ops: m[3] * items,
            branch_ops: m[4] * items,
            other_ops: m[5] * items,
            loads: 0,
            stores: 0,
            bytes_in: 0,
            bytes_out: 0,
            divergence: 0.0,
            coalesced_fraction: 1.0,
        })
        .collect()
}

/// Fit the six [`OpCosts`] coefficients from `(workload, observed seconds)`
/// pairs by least squares over the normal equations.
///
/// Workloads must be register-resident (no loads/stores/transfers) so the
/// model's roofline `max(alu, mem)` degenerates to the linear ALU term —
/// [`calibration_workloads`] produces exactly such shapes.
pub fn fit_op_costs(
    dev: &DeviceProfile,
    timings: &[(WorkloadShape, f64)],
) -> Result<OpCosts, CalibrateError> {
    if timings.len() < NUM_COEFFS {
        return Err(CalibrateError::Underdetermined {
            rows: timings.len(),
            needed: NUM_COEFFS,
        });
    }

    let launch = dev.launch_overhead_us * 1e-6;
    let mut rows: Vec<([f64; NUM_COEFFS], f64)> = Vec::with_capacity(timings.len());
    for (index, (w, t)) in timings.iter().enumerate() {
        let bad = |detail: &str| CalibrateError::BadTiming {
            index,
            detail: detail.to_string(),
        };
        if w.items == 0 {
            return Err(bad("zero work-items"));
        }
        if w.mem_bytes() > 0 || w.bytes_in > 0 || w.bytes_out > 0 {
            return Err(bad(
                "calibration workloads must be register-resident (no loads, stores, or transfers)",
            ));
        }
        if !t.is_finite() || *t <= launch {
            return Err(bad(&format!(
                "observed time {t:?} s does not exceed the launch overhead {launch:?} s"
            )));
        }
        let throughput = effective_alu_throughput(dev, w);
        let counts = [
            w.int_ops,
            w.float_ops,
            w.transcendental_ops,
            w.cmp_ops,
            w.branch_ops,
            w.other_ops,
        ];
        let mut a = [0.0; NUM_COEFFS];
        for (ai, c) in a.iter_mut().zip(counts) {
            *ai = c as f64 / throughput;
        }
        rows.push((a, t - launch));
    }

    // Normal equations: (AᵀA) x = Aᵀb.
    let mut ata = [[0.0f64; NUM_COEFFS]; NUM_COEFFS];
    let mut atb = [0.0f64; NUM_COEFFS];
    for (a, b) in &rows {
        for i in 0..NUM_COEFFS {
            for j in 0..NUM_COEFFS {
                ata[i][j] += a[i] * a[j];
            }
            atb[i] += a[i] * b;
        }
    }
    let x = solve(ata, atb)?;

    let fitted = OpCosts {
        int_op: x[0],
        float_op: x[1],
        transcendental: x[2],
        cmp: x[3],
        branch: x[4],
        other: x[5],
    };
    if let Err((op, value)) = fitted.validate() {
        return Err(CalibrateError::NonPositiveFit { op, value });
    }
    Ok(fitted)
}

/// Gaussian elimination with partial pivoting on the 6×6 normal system.
fn solve(
    mut m: [[f64; NUM_COEFFS]; NUM_COEFFS],
    mut b: [f64; NUM_COEFFS],
) -> Result<[f64; NUM_COEFFS], CalibrateError> {
    // Relative singularity threshold against the largest diagonal entry.
    let scale = m
        .iter()
        .enumerate()
        .map(|(i, row)| row[i].abs())
        .fold(0.0f64, f64::max);
    let eps = scale.max(f64::MIN_POSITIVE) * 1e-12;

    for col in 0..NUM_COEFFS {
        let pivot_row = (col..NUM_COEFFS)
            .max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))
            .unwrap_or(col);
        if m[pivot_row][col].abs() < eps {
            return Err(CalibrateError::Singular);
        }
        m.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for row in col + 1..NUM_COEFFS {
            let (pivot_rows, rest) = m.split_at_mut(row);
            let f = rest[0][col] / pivot_rows[col][col];
            for (dst, src) in rest[0].iter_mut().zip(&pivot_rows[col]).skip(col) {
                *dst -= f * src;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; NUM_COEFFS];
    for row in (0..NUM_COEFFS).rev() {
        let mut acc = b[row];
        for k in row + 1..NUM_COEFFS {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Ok(x)
}

/// Largest relative disagreement between two cost tables, over all six
/// coefficients.
pub fn max_relative_error(truth: &OpCosts, fitted: &OpCosts) -> f64 {
    truth
        .as_named()
        .iter()
        .zip(fitted.as_named())
        .map(|((_, t), (_, f))| (f - t).abs() / t.abs().max(f64::MIN_POSITIVE))
        .fold(0.0, f64::max)
}

/// Result of one calibration round trip on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationOutcome {
    /// The recovered cost table.
    pub fitted: OpCosts,
    /// Largest relative coefficient error against the device's true costs.
    pub max_rel_err: f64,
}

/// Round-trip calibration against simulated timings: run the standard
/// micro-bench suite through the cost model with the device's true costs
/// (optionally perturbing each timing through `noise`, e.g. simulated
/// measurement jitter), fit a cost table from the timings alone, and
/// report the worst coefficient error.
pub fn calibrate_device(
    dev: &DeviceProfile,
    mut noise: impl FnMut(usize, f64) -> f64,
) -> Result<CalibrationOutcome, CalibrateError> {
    let timings: Vec<(WorkloadShape, f64)> = calibration_workloads(dev)
        .into_iter()
        .enumerate()
        .map(|(i, w)| {
            let t = estimate_time(dev, &w).total;
            (w, noise(i, t))
        })
        .collect();
    let fitted = fit_op_costs(dev, &timings)?;
    Ok(CalibrationOutcome {
        max_rel_err: max_relative_error(&dev.cost, &fitted),
        fitted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    /// Noise-free timings must recover the table to machine precision on
    /// every device of every embedded machine — the zoo included.
    #[test]
    fn round_trip_recovers_costs_exactly() {
        for m in machines::builtin_registry().machines() {
            for d in &m.devices {
                let out = calibrate_device(d, |_, t| t)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", m.name, d.name));
                assert!(
                    out.max_rel_err < 1e-9,
                    "{}/{}: max rel err {:.3e}",
                    m.name,
                    d.name,
                    out.max_rel_err
                );
            }
        }
    }

    /// With ±0.5% multiplicative jitter on every timing, least squares
    /// over the over-determined system still lands within a few percent.
    #[test]
    fn round_trip_is_robust_to_timing_noise() {
        let m = machines::by_name("mc1");
        for d in &m.devices {
            // Deterministic pseudo-noise: alternate sign, scaled by index.
            let out = calibrate_device(d, |i, t| {
                let jitter = 0.005 * if i % 2 == 0 { 1.0 } else { -1.0 };
                t * (1.0 + jitter)
            })
            .unwrap_or_else(|e| panic!("{e}"));
            assert!(
                out.max_rel_err < 0.05,
                "{}: noisy max rel err {:.3e}",
                d.name,
                out.max_rel_err
            );
        }
    }

    #[test]
    fn underdetermined_and_bad_rows_are_typed() {
        let d = machines::mc2().devices[0].clone();
        let w = calibration_workloads(&d);

        let few: Vec<_> = w
            .iter()
            .take(3)
            .map(|w| (*w, estimate_time(&d, w).total))
            .collect();
        assert_eq!(
            fit_op_costs(&d, &few).unwrap_err(),
            CalibrateError::Underdetermined { rows: 3, needed: 6 }
        );

        // A memory-touching workload cannot be inverted linearly.
        let mut touched: Vec<_> = w.iter().map(|w| (*w, estimate_time(&d, w).total)).collect();
        touched[2].0.loads = 1000;
        assert!(matches!(
            fit_op_costs(&d, &touched).unwrap_err(),
            CalibrateError::BadTiming { index: 2, .. }
        ));
    }

    #[test]
    fn identical_mixes_are_singular() {
        let d = machines::mc2().devices[1].clone();
        let w = calibration_workloads(&d)[0];
        let rows: Vec<_> = (0..8).map(|_| (w, estimate_time(&d, &w).total)).collect();
        assert_eq!(
            fit_op_costs(&d, &rows).unwrap_err(),
            CalibrateError::Singular
        );
    }
}
