//! Structured-grid workloads (SHOC / Rodinia / vendor): `stencil2d`,
//! `conv2d`, `hotspot`, `srad`, `pathfinder`.

use hetpart_inspire::ir::NdRange;
use hetpart_inspire::vm::{ArgValue, BufferData};

use crate::workload::{hash_f32, Benchmark, Instance};

fn grid(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..n).map(|i| hash_f32(seed, i as u64, lo, hi)).collect()
}

const STENCIL2D_SRC: &str = r#"
kernel void stencil2d(global const float* a, global float* o, int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
        o[y * w + x] = 0.5 * a[y * w + x]
                     + 0.125 * (a[(y - 1) * w + x] + a[(y + 1) * w + x]
                              + a[y * w + x - 1] + a[y * w + x + 1]);
    } else {
        o[y * w + x] = a[y * w + x];
    }
}
"#;

/// `stencil2d` — SHOC Stencil2D: 5-point weighted average, borders copied.
pub fn stencil2d() -> Benchmark {
    Benchmark {
        name: "stencil2d",
        origin: "SHOC",
        description: "5-point 2D stencil",
        source: STENCIL2D_SRC,
        sizes: &[16, 32, 64, 128, 256, 512],
        setup: |n, seed| Instance {
            nd: NdRange::d2(n, n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Int(n as i32),
                ArgValue::Int(n as i32),
            ],
            bufs: vec![
                BufferData::F32(grid(seed, n * n, 0.0, 100.0)),
                BufferData::F32(vec![0.0; n * n]),
            ],
            outputs: vec![1],
        },
        reference: |inst| {
            let a = inst.bufs[0].as_f32().expect("f32");
            let n = inst.nd.dim(0);
            let mut o = vec![0.0f32; n * n];
            for y in 0..n {
                for x in 0..n {
                    let idx = y * n + x;
                    o[idx] = if x > 0 && x < n - 1 && y > 0 && y < n - 1 {
                        (0.5 * f64::from(a[idx])
                            + 0.125
                                * (f64::from(a[(y - 1) * n + x])
                                    + f64::from(a[(y + 1) * n + x])
                                    + f64::from(a[y * n + x - 1])
                                    + f64::from(a[y * n + x + 1]))) as f32
                    } else {
                        a[idx]
                    };
                }
            }
            vec![(1, BufferData::F32(o))]
        },
    }
}

const CONV2D_SRC: &str = r#"
kernel void conv2d(global const float* img, global const float* filter,
                   global float* o, int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x >= 2 && x < w - 2 && y >= 2 && y < h - 2) {
        float acc = 0.0;
        for (int fy = 0; fy < 5; fy++) {
            for (int fx = 0; fx < 5; fx++) {
                acc += img[(y + fy - 2) * w + (x + fx - 2)] * filter[fy * 5 + fx];
            }
        }
        o[y * w + x] = acc;
    } else {
        o[y * w + x] = img[y * w + x];
    }
}
"#;

/// `conv2d` — vendor convolution sample: dense 5×5 filter; a balanced
/// compute/memory mix with a constant-trip-count loop nest.
pub fn conv2d() -> Benchmark {
    Benchmark {
        name: "conv2d",
        origin: "vendor sample",
        description: "2D convolution with a 5x5 filter",
        source: CONV2D_SRC,
        sizes: &[16, 32, 64, 128, 256, 512],
        setup: |n, seed| Instance {
            nd: NdRange::d2(n, n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Buffer(2),
                ArgValue::Int(n as i32),
                ArgValue::Int(n as i32),
            ],
            bufs: vec![
                BufferData::F32(grid(seed, n * n, 0.0, 1.0)),
                BufferData::F32(grid(seed ^ 51, 25, -0.2, 0.2)),
                BufferData::F32(vec![0.0; n * n]),
            ],
            outputs: vec![2],
        },
        reference: |inst| {
            let img = inst.bufs[0].as_f32().expect("f32");
            let filter = inst.bufs[1].as_f32().expect("f32");
            let n = inst.nd.dim(0);
            let mut o = vec![0.0f32; n * n];
            for y in 0..n {
                for x in 0..n {
                    let idx = y * n + x;
                    o[idx] = if x >= 2 && x < n - 2 && y >= 2 && y < n - 2 {
                        let mut acc = 0.0f64;
                        for fy in 0..5 {
                            for fx in 0..5 {
                                acc += f64::from(img[(y + fy - 2) * n + (x + fx - 2)])
                                    * f64::from(filter[fy * 5 + fx]);
                            }
                        }
                        acc as f32
                    } else {
                        img[idx]
                    };
                }
            }
            vec![(2, BufferData::F32(o))]
        },
    }
}

const HOTSPOT_SRC: &str = r#"
kernel void hotspot(global const float* temp, global const float* power,
                    global float* out, int w, int h,
                    float cap, float rx, float ry, float rz, float amb) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int idx = y * w + x;
    int xl = max(x - 1, 0);
    int xr = min(x + 1, w - 1);
    int yt = max(y - 1, 0);
    int yb = min(y + 1, h - 1);
    float t = temp[idx];
    float delta = cap * (power[idx]
        + (temp[yb * w + x] + temp[yt * w + x] - 2.0 * t) * ry
        + (temp[y * w + xr] + temp[y * w + xl] - 2.0 * t) * rx
        + (amb - t) * rz);
    out[idx] = t + delta;
}
"#;

/// `hotspot` — Rodinia HotSpot thermal simulation step: two input grids
/// (temperature and power), clamped-neighbour diffusion.
pub fn hotspot() -> Benchmark {
    Benchmark {
        name: "hotspot",
        origin: "Rodinia",
        description: "thermal simulation stencil step",
        source: HOTSPOT_SRC,
        sizes: &[16, 32, 64, 128, 256, 512],
        setup: |n, seed| Instance {
            nd: NdRange::d2(n, n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Buffer(2),
                ArgValue::Int(n as i32),
                ArgValue::Int(n as i32),
                ArgValue::Float(0.5),
                ArgValue::Float(0.1),
                ArgValue::Float(0.1),
                ArgValue::Float(0.05),
                ArgValue::Float(80.0),
            ],
            bufs: vec![
                BufferData::F32(grid(seed, n * n, 300.0, 350.0)),
                BufferData::F32(grid(seed ^ 61, n * n, 0.0, 5.0)),
                BufferData::F32(vec![0.0; n * n]),
            ],
            outputs: vec![2],
        },
        reference: |inst| {
            let temp = inst.bufs[0].as_f32().expect("f32");
            let power = inst.bufs[1].as_f32().expect("f32");
            let n = inst.nd.dim(0);
            let (cap, rx, ry, rz, amb) = (0.5f64, 0.1f64, 0.1f64, 0.05f64, 80.0f64);
            let mut out = vec![0.0f32; n * n];
            for y in 0..n {
                for x in 0..n {
                    let idx = y * n + x;
                    let xl = x.saturating_sub(1);
                    let xr = (x + 1).min(n - 1);
                    let yt = y.saturating_sub(1);
                    let yb = (y + 1).min(n - 1);
                    let t = f64::from(temp[idx]);
                    let delta = cap
                        * (f64::from(power[idx])
                            + (f64::from(temp[yb * n + x]) + f64::from(temp[yt * n + x])
                                - 2.0 * t)
                                * ry
                            + (f64::from(temp[y * n + xr]) + f64::from(temp[y * n + xl])
                                - 2.0 * t)
                                * rx
                            + (amb - t) * rz);
                    out[idx] = (t + delta) as f32;
                }
            }
            vec![(2, BufferData::F32(out))]
        },
    }
}

const SRAD_SRC: &str = r#"
kernel void srad(global const float* img, global float* o,
                 int w, int h, float lambda, float q0) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int idx = y * w + x;
    int xl = max(x - 1, 0);
    int xr = min(x + 1, w - 1);
    int yt = max(y - 1, 0);
    int yb = min(y + 1, h - 1);
    float jc = img[idx];
    float dn = img[yt * w + x] - jc;
    float ds = img[yb * w + x] - jc;
    float dw = img[y * w + xl] - jc;
    float de = img[y * w + xr] - jc;
    float g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc + 0.00001);
    float l = (dn + ds + dw + de) / (jc + 0.00001);
    float num = 0.5 * g2 - 0.0625 * l * l;
    float den = 1.0 + 0.25 * l;
    float qsqr = num / (den * den + 0.00001);
    float cden = (qsqr - q0) / (q0 * (1.0 + q0) + 0.00001);
    float c = 1.0 / (1.0 + cden);
    if (c < 0.0) {
        c = 0.0;
    } else if (c > 1.0) {
        c = 1.0;
    }
    o[idx] = jc + 0.25 * lambda * c * (dn + ds + dw + de);
}
"#;

/// `srad` — Rodinia SRAD speckle-reducing anisotropic diffusion step:
/// gradient-dependent coefficients with data-dependent clamping branches
/// (divergent control flow).
pub fn srad() -> Benchmark {
    Benchmark {
        name: "srad",
        origin: "Rodinia",
        description: "speckle-reducing anisotropic diffusion step",
        source: SRAD_SRC,
        sizes: &[16, 32, 64, 128, 256, 512],
        setup: |n, seed| Instance {
            nd: NdRange::d2(n, n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Int(n as i32),
                ArgValue::Int(n as i32),
                ArgValue::Float(0.5),
                ArgValue::Float(0.05),
            ],
            bufs: vec![
                BufferData::F32(grid(seed, n * n, 0.05, 1.0)),
                BufferData::F32(vec![0.0; n * n]),
            ],
            outputs: vec![1],
        },
        reference: |inst| {
            let img = inst.bufs[0].as_f32().expect("f32");
            let n = inst.nd.dim(0);
            let (lambda, q0) = (0.5f64, 0.05f64);
            let mut o = vec![0.0f32; n * n];
            for y in 0..n {
                for x in 0..n {
                    let idx = y * n + x;
                    let xl = x.saturating_sub(1);
                    let xr = (x + 1).min(n - 1);
                    let yt = y.saturating_sub(1);
                    let yb = (y + 1).min(n - 1);
                    let jc = f64::from(img[idx]);
                    let dn = f64::from(img[yt * n + x]) - jc;
                    let ds = f64::from(img[yb * n + x]) - jc;
                    let dw = f64::from(img[y * n + xl]) - jc;
                    let de = f64::from(img[y * n + xr]) - jc;
                    let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc + 0.00001);
                    let l = (dn + ds + dw + de) / (jc + 0.00001);
                    let num = 0.5 * g2 - 0.0625 * l * l;
                    let den = 1.0 + 0.25 * l;
                    let qsqr = num / (den * den + 0.00001);
                    let cden = (qsqr - q0) / (q0 * (1.0 + q0) + 0.00001);
                    let c = (1.0 / (1.0 + cden)).clamp(0.0, 1.0);
                    o[idx] = (jc + 0.25 * lambda * c * (dn + ds + dw + de)) as f32;
                }
            }
            vec![(1, BufferData::F32(o))]
        },
    }
}

const PATHFINDER_SRC: &str = r#"
kernel void pathfinder(global const float* prev, global const float* row,
                       global float* dst, int n) {
    int i = get_global_id(0);
    int l = max(i - 1, 0);
    int r = min(i + 1, n - 1);
    float best = fmin(fmin(prev[l], prev[i]), prev[r]);
    dst[i] = row[i] + best;
}
"#;

/// `pathfinder` — Rodinia PathFinder dynamic-programming row step:
/// neighbour-min plus cost, the grid-DP access pattern.
pub fn pathfinder() -> Benchmark {
    Benchmark {
        name: "pathfinder",
        origin: "Rodinia",
        description: "dynamic-programming row relaxation",
        source: PATHFINDER_SRC,
        sizes: &[1024, 4096, 16384, 65536, 262144, 1048576],
        setup: |n, seed| Instance {
            nd: NdRange::d1(n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Buffer(2),
                ArgValue::Int(n as i32),
            ],
            bufs: vec![
                BufferData::F32(grid(seed, n, 0.0, 10.0)),
                BufferData::F32(grid(seed ^ 71, n, 0.0, 10.0)),
                BufferData::F32(vec![0.0; n]),
            ],
            outputs: vec![2],
        },
        reference: |inst| {
            let prev = inst.bufs[0].as_f32().expect("f32");
            let row = inst.bufs[1].as_f32().expect("f32");
            let n = prev.len();
            let mut dst = vec![0.0f32; n];
            for (i, d) in dst.iter_mut().enumerate() {
                let l = i.saturating_sub(1);
                let r = (i + 1).min(n - 1);
                let best = f64::from(prev[l])
                    .min(f64::from(prev[i]))
                    .min(f64::from(prev[r]));
                *d = (f64::from(row[i]) + best) as f32;
            }
            vec![(2, BufferData::F32(dst))]
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil2d_verifies() {
        stencil2d().run_and_verify(16).unwrap();
    }

    #[test]
    fn conv2d_verifies() {
        conv2d().run_and_verify(16).unwrap();
    }

    #[test]
    fn hotspot_verifies() {
        hotspot().run_and_verify(16).unwrap();
    }

    #[test]
    fn srad_verifies() {
        srad().run_and_verify(16).unwrap();
    }

    #[test]
    fn pathfinder_verifies() {
        pathfinder().run_and_verify(1024).unwrap();
    }

    #[test]
    fn stencil_preserves_borders() {
        let b = stencil2d();
        let inst = (b.setup)(16, 5);
        let kernel = b.compile();
        let mut bufs = inst.bufs.clone();
        let mut vm = hetpart_inspire::vm::Vm::new();
        vm.run_range(&kernel.bytecode, &inst.nd, 0..16, &inst.args, &mut bufs)
            .unwrap();
        let input = inst.bufs[0].as_f32().unwrap();
        let out = bufs[1].as_f32().unwrap();
        for x in 0..16 {
            assert_eq!(out[x], input[x], "top border");
            assert_eq!(out[15 * 16 + x], input[15 * 16 + x], "bottom border");
        }
    }

    #[test]
    fn srad_has_divergent_conditions() {
        let k = srad().compile();
        assert!(k.static_features.divergent_conditions >= 1);
    }
}
