//! Sparse / irregular workloads (SHOC): `spmv_csr`.

use hetpart_inspire::ir::NdRange;
use hetpart_inspire::vm::{ArgValue, BufferData};

use crate::workload::{hash_f32, hash_u64, Benchmark, Instance};

/// Average non-zeros per row of the generated matrices.
pub const NNZ_PER_ROW: usize = 8;

const SPMV_SRC: &str = r#"
kernel void spmv_csr(global const int* row_ptr, global const int* col_idx,
                     global const float* vals, global const float* x,
                     global float* y, int n) {
    int i = get_global_id(0);
    float s = 0.0;
    int start = row_ptr[i];
    int end = row_ptr[i + 1];
    for (int j = start; j < end; j++) {
        s += vals[j] * x[col_idx[j]];
    }
    y[i] = s;
}
"#;

/// `spmv_csr` — CSR sparse matrix-vector product; the canonical
/// irregular-gather workload (data-dependent inner loop bounds and
/// indices).
pub fn spmv_csr() -> Benchmark {
    Benchmark {
        name: "spmv_csr",
        origin: "SHOC",
        description: "CSR sparse matrix-vector multiplication",
        source: SPMV_SRC,
        sizes: &[1024, 4096, 16384, 65536, 262144, 1048576],
        setup: |n, seed| {
            // Deterministic sparsity: row i has 1 + (hash % (2*avg-1))
            // entries at pseudo-random columns, so row lengths diverge.
            let mut row_ptr = Vec::with_capacity(n + 1);
            let mut col_idx = Vec::new();
            let mut vals = Vec::new();
            row_ptr.push(0i32);
            for i in 0..n {
                let nnz = 1 + (hash_u64(seed ^ 41, i as u64) as usize) % (2 * NNZ_PER_ROW - 1);
                for j in 0..nnz {
                    let col = (hash_u64(seed ^ 42, (i * 131 + j) as u64) as usize) % n;
                    col_idx.push(col as i32);
                    vals.push(hash_f32(seed ^ 43, (i * 131 + j) as u64, -1.0, 1.0));
                }
                row_ptr.push(col_idx.len() as i32);
            }
            let x: Vec<f32> = (0..n)
                .map(|i| hash_f32(seed ^ 44, i as u64, -1.0, 1.0))
                .collect();
            Instance {
                nd: NdRange::d1(n),
                args: vec![
                    ArgValue::Buffer(0),
                    ArgValue::Buffer(1),
                    ArgValue::Buffer(2),
                    ArgValue::Buffer(3),
                    ArgValue::Buffer(4),
                    ArgValue::Int(n as i32),
                ],
                bufs: vec![
                    BufferData::I32(row_ptr),
                    BufferData::I32(col_idx),
                    BufferData::F32(vals),
                    BufferData::F32(x),
                    BufferData::F32(vec![0.0; n]),
                ],
                outputs: vec![4],
            }
        },
        reference: |inst| {
            let row_ptr = inst.bufs[0].as_i32().expect("i32");
            let col_idx = inst.bufs[1].as_i32().expect("i32");
            let vals = inst.bufs[2].as_f32().expect("f32");
            let x = inst.bufs[3].as_f32().expect("f32");
            let n = inst.bufs[4].len();
            let mut y = vec![0.0f32; n];
            for (i, yo) in y.iter_mut().enumerate() {
                let mut s = 0.0f64;
                for j in row_ptr[i] as usize..row_ptr[i + 1] as usize {
                    s += f64::from(vals[j]) * f64::from(x[col_idx[j] as usize]);
                }
                *yo = s as f32;
            }
            vec![(4, BufferData::F32(y))]
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_verifies() {
        spmv_csr().run_and_verify(1024).unwrap();
    }

    #[test]
    fn spmv_has_irregular_rows() {
        let b = spmv_csr();
        let inst = (b.setup)(1024, 3);
        let row_ptr = inst.bufs[0].as_i32().unwrap();
        let lens: Vec<i32> = row_ptr.windows(2).map(|w| w[1] - w[0]).collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(max > min, "row lengths must vary: min={min} max={max}");
        assert!(*max as usize <= 2 * NNZ_PER_ROW);
    }

    #[test]
    fn spmv_is_flagged_indirect_by_the_compiler() {
        let k = spmv_csr().compile();
        assert!(k.static_features.indirect_accesses >= 1);
    }
}
