//! # hetpart-suite
//!
//! The 23-program benchmark suite of the paper's evaluation, re-implemented
//! in the hetpart kernel language with deterministic input generators and
//! native Rust reference implementations for verification.
//!
//! The workloads are drawn from the same sources the paper cites — OpenCL
//! vendor example codes, Rodinia, SHOC, PolyBench-GPU, and
//! department/partner codes — and cover the axes that make task
//! partitioning non-trivial: streaming vs. compute-bound, regular vs.
//! gather/scatter access, uniform vs. divergent control flow, and
//! transfer-light vs. transfer-heavy kernels.
//!
//! ```
//! let suite = hetpart_suite::all();
//! assert_eq!(suite.len(), 23);
//! let vec_add = hetpart_suite::by_name("vec_add").unwrap();
//! vec_add.run_and_verify(1024).unwrap();
//! ```

pub mod apps;
pub mod linalg;
pub mod sparse;
pub mod stencil;
pub mod streaming;
pub mod workload;

pub use workload::{Benchmark, Instance};

/// All 23 benchmarks, in the suite's canonical order.
pub fn all() -> Vec<Benchmark> {
    vec![
        streaming::vec_add(),
        streaming::triad(),
        streaming::dot_product(),
        streaming::reduction_sum(),
        linalg::sgemm(),
        linalg::mat_transpose(),
        linalg::mvt(),
        linalg::gemver(),
        linalg::bicg(),
        linalg::syrk(),
        sparse::spmv_csr(),
        stencil::stencil2d(),
        stencil::conv2d(),
        stencil::hotspot(),
        stencil::srad(),
        stencil::pathfinder(),
        apps::kmeans(),
        apps::nearest_neighbor(),
        apps::nbody(),
        apps::md_lj(),
        apps::blackscholes(),
        apps::mandelbrot(),
        apps::monte_carlo_pi(),
    ]
}

/// Look up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_has_23_uniquely_named_programs() {
        let suite = all();
        assert_eq!(suite.len(), 23, "the paper evaluates 23 programs");
        let names: HashSet<&str> = suite.iter().map(|b| b.name).collect();
        assert_eq!(names.len(), 23, "names must be unique");
    }

    #[test]
    fn every_kernel_compiles() {
        for b in all() {
            let k = b.compile();
            assert!(!k.name.is_empty());
            assert!(k.bytecode.num_instrs() > 0, "{} has no code", b.name);
        }
    }

    #[test]
    fn every_benchmark_has_a_size_ladder() {
        for b in all() {
            assert!(
                b.sizes.len() >= 6,
                "{} needs >= 6 problem sizes for the size-sensitivity study",
                b.name
            );
            let mut sorted = b.sizes.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, b.sizes, "{}: sizes must be ascending", b.name);
            assert!(
                *b.sizes.last().unwrap() >= 32 * b.sizes[0],
                "{}: ladder must span >= 1.5 orders of magnitude",
                b.name
            );
        }
    }

    #[test]
    fn by_name_finds_each_benchmark() {
        for b in all() {
            assert_eq!(by_name(b.name).unwrap().name, b.name);
        }
        assert!(by_name("missing").is_none());
    }

    #[test]
    fn setup_is_deterministic() {
        for b in all().into_iter().take(4) {
            let a = b.instance(b.smallest_size());
            let c = b.instance(b.smallest_size());
            assert_eq!(a.bufs, c.bufs, "{}", b.name);
        }
    }

    #[test]
    fn origins_cover_the_cited_suites() {
        let origins: HashSet<&str> = all().iter().map(|b| b.origin).collect();
        for needed in ["Rodinia", "SHOC", "PolyBench", "vendor sample"] {
            assert!(
                origins.iter().any(|o| o.contains(needed)),
                "no benchmark from {needed}"
            );
        }
    }
}
