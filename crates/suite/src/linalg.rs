//! Dense linear-algebra workloads (SHOC / PolyBench-GPU): `sgemm`,
//! `mat_transpose`, `mvt`, `gemver`, `bicg`, `syrk`.

use hetpart_inspire::ir::NdRange;
use hetpart_inspire::vm::{ArgValue, BufferData};

use crate::workload::{hash_f32, Benchmark, Instance};

fn matrix(seed: u64, n: usize, m: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..n * m)
        .map(|i| hash_f32(seed, i as u64, lo, hi))
        .collect()
}

const SGEMM_SRC: &str = r#"
kernel void sgemm(global const float* a, global const float* b,
                  global float* c, int n) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float acc = 0.0;
    for (int k = 0; k < n; k++) {
        acc += a[y * n + k] * b[k * n + x];
    }
    c[y * n + x] = acc;
}
"#;

/// `sgemm` — square matrix multiply; O(n³) flops over O(n²) bytes, the
/// classic compute-bound kernel.
pub fn sgemm() -> Benchmark {
    Benchmark {
        name: "sgemm",
        origin: "SHOC / PolyBench",
        description: "dense square matrix multiplication",
        source: SGEMM_SRC,
        sizes: &[16, 32, 64, 128, 256, 512],
        setup: |n, seed| Instance {
            nd: NdRange::d2(n, n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Buffer(2),
                ArgValue::Int(n as i32),
            ],
            bufs: vec![
                BufferData::F32(matrix(seed, n, n, -1.0, 1.0)),
                BufferData::F32(matrix(seed ^ 5, n, n, -1.0, 1.0)),
                BufferData::F32(vec![0.0; n * n]),
            ],
            outputs: vec![2],
        },
        reference: |inst| {
            let a = inst.bufs[0].as_f32().expect("f32");
            let b = inst.bufs[1].as_f32().expect("f32");
            let n = inst.nd.dim(0);
            let mut c = vec![0.0f32; n * n];
            for y in 0..n {
                for x in 0..n {
                    let mut acc = 0.0f64;
                    for k in 0..n {
                        acc += f64::from(a[y * n + k]) * f64::from(b[k * n + x]);
                    }
                    c[y * n + x] = acc as f32;
                }
            }
            vec![(2, BufferData::F32(c))]
        },
    }
}

const TRANSPOSE_SRC: &str = r#"
kernel void mat_transpose(global const float* a, global float* o,
                          int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    o[x * h + y] = a[y * w + x];
}
"#;

/// `mat_transpose` — out-of-place transpose; strided stores make this the
/// coalescing stress test.
pub fn mat_transpose() -> Benchmark {
    Benchmark {
        name: "mat_transpose",
        origin: "vendor sample",
        description: "out-of-place matrix transpose",
        source: TRANSPOSE_SRC,
        sizes: &[16, 32, 64, 128, 256, 512],
        setup: |n, seed| Instance {
            nd: NdRange::d2(n, n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Int(n as i32),
                ArgValue::Int(n as i32),
            ],
            bufs: vec![
                BufferData::F32(matrix(seed, n, n, -4.0, 4.0)),
                BufferData::F32(vec![0.0; n * n]),
            ],
            outputs: vec![1],
        },
        reference: |inst| {
            let a = inst.bufs[0].as_f32().expect("f32");
            let n = inst.nd.dim(0);
            let mut o = vec![0.0f32; n * n];
            for y in 0..n {
                for x in 0..n {
                    o[x * n + y] = a[y * n + x];
                }
            }
            vec![(1, BufferData::F32(o))]
        },
    }
}

const MVT_SRC: &str = r#"
kernel void mvt(global const float* a, global const float* y1,
                global const float* y2, global float* x1,
                global float* x2, int n) {
    int i = get_global_id(0);
    float s1 = 0.0;
    float s2 = 0.0;
    for (int j = 0; j < n; j++) {
        s1 += a[i * n + j] * y1[j];
        s2 += a[j * n + i] * y2[j];
    }
    x1[i] = s1;
    x2[i] = s2;
}
"#;

/// `mvt` — PolyBench MVT: simultaneous `A·y1` and `Aᵀ·y2`; row and column
/// sweeps of the same matrix.
pub fn mvt() -> Benchmark {
    Benchmark {
        name: "mvt",
        origin: "PolyBench",
        description: "matrix-vector product and transposed product",
        source: MVT_SRC,
        sizes: &[64, 128, 256, 512, 1024, 2048],
        setup: |n, seed| Instance {
            nd: NdRange::d1(n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Buffer(2),
                ArgValue::Buffer(3),
                ArgValue::Buffer(4),
                ArgValue::Int(n as i32),
            ],
            bufs: vec![
                BufferData::F32(matrix(seed, n, n, -1.0, 1.0)),
                BufferData::F32(matrix(seed ^ 7, n, 1, -1.0, 1.0)),
                BufferData::F32(matrix(seed ^ 8, n, 1, -1.0, 1.0)),
                BufferData::F32(vec![0.0; n]),
                BufferData::F32(vec![0.0; n]),
            ],
            outputs: vec![3, 4],
        },
        reference: |inst| {
            let a = inst.bufs[0].as_f32().expect("f32");
            let y1 = inst.bufs[1].as_f32().expect("f32");
            let y2 = inst.bufs[2].as_f32().expect("f32");
            let n = y1.len();
            let mut x1 = vec![0.0f32; n];
            let mut x2 = vec![0.0f32; n];
            for i in 0..n {
                let mut s1 = 0.0f64;
                let mut s2 = 0.0f64;
                for j in 0..n {
                    s1 += f64::from(a[i * n + j]) * f64::from(y1[j]);
                    s2 += f64::from(a[j * n + i]) * f64::from(y2[j]);
                }
                x1[i] = s1 as f32;
                x2[i] = s2 as f32;
            }
            vec![(3, BufferData::F32(x1)), (4, BufferData::F32(x2))]
        },
    }
}

const GEMVER_SRC: &str = r#"
kernel void gemver(global const float* a, global const float* u1,
                   global const float* v1, global const float* u2,
                   global const float* v2, global float* b, int n) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    b[y * n + x] = a[y * n + x] + u1[y] * v1[x] + u2[y] * v2[x];
}
"#;

/// `gemver` — PolyBench GEMVER rank-2 update `B = A + u1·v1ᵀ + u2·v2ᵀ`.
pub fn gemver() -> Benchmark {
    Benchmark {
        name: "gemver",
        origin: "PolyBench",
        description: "rank-2 matrix update",
        source: GEMVER_SRC,
        sizes: &[16, 32, 64, 128, 256, 512],
        setup: |n, seed| Instance {
            nd: NdRange::d2(n, n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Buffer(2),
                ArgValue::Buffer(3),
                ArgValue::Buffer(4),
                ArgValue::Buffer(5),
                ArgValue::Int(n as i32),
            ],
            bufs: vec![
                BufferData::F32(matrix(seed, n, n, -1.0, 1.0)),
                BufferData::F32(matrix(seed ^ 11, n, 1, -1.0, 1.0)),
                BufferData::F32(matrix(seed ^ 12, n, 1, -1.0, 1.0)),
                BufferData::F32(matrix(seed ^ 13, n, 1, -1.0, 1.0)),
                BufferData::F32(matrix(seed ^ 14, n, 1, -1.0, 1.0)),
                BufferData::F32(vec![0.0; n * n]),
            ],
            outputs: vec![5],
        },
        reference: |inst| {
            let a = inst.bufs[0].as_f32().expect("f32");
            let u1 = inst.bufs[1].as_f32().expect("f32");
            let v1 = inst.bufs[2].as_f32().expect("f32");
            let u2 = inst.bufs[3].as_f32().expect("f32");
            let v2 = inst.bufs[4].as_f32().expect("f32");
            let n = u1.len();
            let mut b = vec![0.0f32; n * n];
            for y in 0..n {
                for x in 0..n {
                    let v = f64::from(a[y * n + x])
                        + f64::from(u1[y]) * f64::from(v1[x])
                        + f64::from(u2[y]) * f64::from(v2[x]);
                    b[y * n + x] = v as f32;
                }
            }
            vec![(5, BufferData::F32(b))]
        },
    }
}

const BICG_SRC: &str = r#"
kernel void bicg(global const float* a, global const float* p,
                 global const float* r, global float* q,
                 global float* s, int n) {
    int i = get_global_id(0);
    float sq = 0.0;
    float ss = 0.0;
    for (int j = 0; j < n; j++) {
        sq += a[i * n + j] * p[j];
        ss += a[j * n + i] * r[j];
    }
    q[i] = sq;
    s[i] = ss;
}
"#;

/// `bicg` — PolyBench BiCG sub-kernel: `q = A·p` and `s = Aᵀ·r` fused.
pub fn bicg() -> Benchmark {
    Benchmark {
        name: "bicg",
        origin: "PolyBench",
        description: "BiCG dual matrix-vector kernel",
        source: BICG_SRC,
        sizes: &[64, 128, 256, 512, 1024, 2048],
        setup: |n, seed| Instance {
            nd: NdRange::d1(n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Buffer(2),
                ArgValue::Buffer(3),
                ArgValue::Buffer(4),
                ArgValue::Int(n as i32),
            ],
            bufs: vec![
                BufferData::F32(matrix(seed, n, n, -1.0, 1.0)),
                BufferData::F32(matrix(seed ^ 21, n, 1, -1.0, 1.0)),
                BufferData::F32(matrix(seed ^ 22, n, 1, -1.0, 1.0)),
                BufferData::F32(vec![0.0; n]),
                BufferData::F32(vec![0.0; n]),
            ],
            outputs: vec![3, 4],
        },
        reference: |inst| {
            let a = inst.bufs[0].as_f32().expect("f32");
            let p = inst.bufs[1].as_f32().expect("f32");
            let r = inst.bufs[2].as_f32().expect("f32");
            let n = p.len();
            let mut q = vec![0.0f32; n];
            let mut s = vec![0.0f32; n];
            for i in 0..n {
                let mut sq = 0.0f64;
                let mut ss = 0.0f64;
                for j in 0..n {
                    sq += f64::from(a[i * n + j]) * f64::from(p[j]);
                    ss += f64::from(a[j * n + i]) * f64::from(r[j]);
                }
                q[i] = sq as f32;
                s[i] = ss as f32;
            }
            vec![(3, BufferData::F32(q)), (4, BufferData::F32(s))]
        },
    }
}

const SYRK_SRC: &str = r#"
kernel void syrk(global const float* a, global const float* c_in,
                 global float* c_out, float alpha, float beta, int n) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float acc = 0.0;
    for (int k = 0; k < n; k++) {
        acc += a[y * n + k] * a[x * n + k];
    }
    c_out[y * n + x] = beta * c_in[y * n + x] + alpha * acc;
}
"#;

/// `syrk` — PolyBench SYRK symmetric rank-k update `C = β·C + α·A·Aᵀ`.
pub fn syrk() -> Benchmark {
    Benchmark {
        name: "syrk",
        origin: "PolyBench",
        description: "symmetric rank-k matrix update",
        source: SYRK_SRC,
        sizes: &[16, 32, 64, 128, 256, 512],
        setup: |n, seed| Instance {
            nd: NdRange::d2(n, n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Buffer(2),
                ArgValue::Float(1.5),
                ArgValue::Float(0.5),
                ArgValue::Int(n as i32),
            ],
            bufs: vec![
                BufferData::F32(matrix(seed, n, n, -1.0, 1.0)),
                BufferData::F32(matrix(seed ^ 31, n, n, -1.0, 1.0)),
                BufferData::F32(vec![0.0; n * n]),
            ],
            outputs: vec![2],
        },
        reference: |inst| {
            let a = inst.bufs[0].as_f32().expect("f32");
            let c_in = inst.bufs[1].as_f32().expect("f32");
            let n = inst.nd.dim(0);
            let (alpha, beta) = (1.5f64, 0.5f64);
            let mut c = vec![0.0f32; n * n];
            for y in 0..n {
                for x in 0..n {
                    let mut acc = 0.0f64;
                    for k in 0..n {
                        acc += f64::from(a[y * n + k]) * f64::from(a[x * n + k]);
                    }
                    c[y * n + x] = (beta * f64::from(c_in[y * n + x]) + alpha * acc) as f32;
                }
            }
            vec![(2, BufferData::F32(c))]
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgemm_verifies() {
        sgemm().run_and_verify(16).unwrap();
    }

    #[test]
    fn transpose_verifies() {
        mat_transpose().run_and_verify(16).unwrap();
    }

    #[test]
    fn mvt_verifies() {
        mvt().run_and_verify(64).unwrap();
    }

    #[test]
    fn gemver_verifies() {
        gemver().run_and_verify(16).unwrap();
    }

    #[test]
    fn bicg_verifies() {
        bicg().run_and_verify(64).unwrap();
    }

    #[test]
    fn syrk_verifies() {
        syrk().run_and_verify(16).unwrap();
    }

    #[test]
    fn sgemm_matches_identity_multiplication() {
        // A × I = A: hand-built instance with B = identity.
        let b = sgemm();
        let n = 8;
        let mut inst = (b.setup)(n, 1);
        let mut ident = vec![0.0f32; n * n];
        for i in 0..n {
            ident[i * n + i] = 1.0;
        }
        inst.bufs[1] = BufferData::F32(ident);
        let kernel = b.compile();
        let mut bufs = inst.bufs.clone();
        let mut vm = hetpart_inspire::vm::Vm::new();
        vm.run_range(&kernel.bytecode, &inst.nd, 0..n, &inst.args, &mut bufs)
            .unwrap();
        assert_eq!(bufs[2].as_f32().unwrap(), inst.bufs[0].as_f32().unwrap());
    }
}
