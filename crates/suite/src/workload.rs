//! The benchmark abstraction: kernel source + input generator + native
//! reference implementation + verification.

use hetpart_inspire::ir::NdRange;
use hetpart_inspire::vm::{ArgValue, BufferData, Vm};
use hetpart_inspire::{compile, CompiledKernel};

/// A concrete, runnable problem instance of a benchmark.
#[derive(Debug, Clone)]
pub struct Instance {
    pub nd: NdRange,
    pub args: Vec<ArgValue>,
    pub bufs: Vec<BufferData>,
    /// Indices into `bufs` that the kernel writes and the reference checks.
    pub outputs: Vec<usize>,
}

/// One benchmark program of the suite.
#[derive(Clone)]
pub struct Benchmark {
    /// Short identifier (`vec_add`, `sgemm`, …).
    pub name: &'static str,
    /// Which suite the paper drew the workload from.
    pub origin: &'static str,
    /// One-line description of the computation.
    pub description: &'static str,
    /// Kernel source in the hetpart kernel language.
    pub source: &'static str,
    /// Problem-size ladder (the primary size parameter; meaning is
    /// benchmark-specific, e.g. vector length or matrix dimension).
    pub sizes: &'static [usize],
    /// Build buffers, arguments and the NDRange for a problem size.
    pub setup: fn(n: usize, seed: u64) -> Instance,
    /// Compute the expected contents of each output buffer with a plain
    /// Rust implementation. Returns `(buffer index, expected data)` pairs.
    pub reference: fn(&Instance) -> Vec<(usize, BufferData)>,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("origin", &self.origin)
            .field("sizes", &self.sizes)
            .finish()
    }
}

impl Benchmark {
    /// Compile the kernel source.
    ///
    /// # Panics
    /// Panics if the bundled source does not compile — that is a bug in
    /// the suite, covered by tests.
    pub fn compile(&self) -> CompiledKernel {
        compile(self.source)
            .unwrap_or_else(|e| panic!("benchmark `{}` failed to compile: {e}", self.name))
    }

    /// Compile the kernel source at an explicit optimization level (the
    /// harness threads its configured level through here so training,
    /// eval and serving all run the same bytecode).
    ///
    /// # Panics
    /// Panics if the bundled source does not compile — that is a bug in
    /// the suite, covered by tests.
    pub fn compile_with_opt(&self, level: hetpart_inspire::OptLevel) -> CompiledKernel {
        hetpart_inspire::compile_with_opt(self.source, level)
            .unwrap_or_else(|e| panic!("benchmark `{}` failed to compile: {e}", self.name))
    }

    /// Compile the kernel source at an explicit optimization level and
    /// backend (register-allocation + pre-decode) mode.
    ///
    /// # Panics
    /// Panics if the bundled source does not compile — that is a bug in
    /// the suite, covered by tests.
    pub fn compile_with_modes(
        &self,
        level: hetpart_inspire::OptLevel,
        regalloc: hetpart_inspire::RegAlloc,
    ) -> CompiledKernel {
        hetpart_inspire::compile_with_modes(self.source, level, regalloc)
            .unwrap_or_else(|e| panic!("benchmark `{}` failed to compile: {e}", self.name))
    }

    /// Smallest size of the ladder (used by functional tests).
    pub fn smallest_size(&self) -> usize {
        self.sizes[0]
    }

    /// A middle-of-the-ladder size.
    pub fn default_size(&self) -> usize {
        self.sizes[self.sizes.len() / 2]
    }

    /// Build an instance at size `n` with the default seed.
    pub fn instance(&self, n: usize) -> Instance {
        (self.setup)(n, 0x5EED_0000 ^ n as u64)
    }

    /// Execute the kernel functionally over the whole NDRange on a single
    /// VM and verify the outputs against the native reference.
    pub fn run_and_verify(&self, n: usize) -> Result<(), String> {
        let kernel = self.compile();
        let inst = self.instance(n);
        let mut bufs = inst.bufs.clone();
        let mut vm = Vm::new();
        vm.run_range(
            &kernel.bytecode,
            &inst.nd,
            0..inst.nd.split_extent(),
            &inst.args,
            &mut bufs,
        )
        .map_err(|e| format!("{}: VM error: {e}", self.name))?;
        self.check_outputs(&inst, &bufs)
    }

    /// Compare the output buffers of an executed instance against the
    /// reference implementation.
    pub fn check_outputs(&self, inst: &Instance, bufs: &[BufferData]) -> Result<(), String> {
        for (idx, expected) in (self.reference)(inst) {
            let got = &bufs[idx];
            compare_buffers(self.name, idx, &expected, got)?;
        }
        Ok(())
    }
}

/// Relative/absolute tolerance for float comparison. The VM computes in
/// `f64` and rounds to `f32` on store; references do the same, but op
/// reassociation in references is allowed, so a small tolerance remains.
pub fn approx_eq_f32(a: f32, b: f32) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    let diff = (f64::from(a) - f64::from(b)).abs();
    let scale = f64::from(a.abs().max(b.abs()));
    diff <= 1e-4 * scale.max(1.0)
}

/// Element-wise buffer comparison with useful error messages.
pub fn compare_buffers(
    bench: &str,
    buf_idx: usize,
    expected: &BufferData,
    got: &BufferData,
) -> Result<(), String> {
    if expected.len() != got.len() {
        return Err(format!(
            "{bench}: output buffer {buf_idx} length mismatch: expected {}, got {}",
            expected.len(),
            got.len()
        ));
    }
    match (expected, got) {
        (BufferData::F32(e), BufferData::F32(g)) => {
            for (i, (ev, gv)) in e.iter().zip(g).enumerate() {
                if !approx_eq_f32(*ev, *gv) {
                    return Err(format!(
                        "{bench}: buffer {buf_idx}[{i}]: expected {ev}, got {gv}"
                    ));
                }
            }
            Ok(())
        }
        (BufferData::I32(e), BufferData::I32(g)) => {
            for (i, (ev, gv)) in e.iter().zip(g).enumerate() {
                if ev != gv {
                    return Err(format!(
                        "{bench}: buffer {buf_idx}[{i}]: expected {ev}, got {gv}"
                    ));
                }
            }
            Ok(())
        }
        (BufferData::U32(e), BufferData::U32(g)) => {
            for (i, (ev, gv)) in e.iter().zip(g).enumerate() {
                if ev != gv {
                    return Err(format!(
                        "{bench}: buffer {buf_idx}[{i}]: expected {ev}, got {gv}"
                    ));
                }
            }
            Ok(())
        }
        _ => Err(format!("{bench}: buffer {buf_idx} type mismatch")),
    }
}

/// Deterministic pseudo-random `f32` in `[lo, hi)` from an index and seed
/// (splitmix64-based; identical in setup and reference code).
pub fn hash_f32(seed: u64, i: u64, lo: f32, hi: f32) -> f32 {
    let unit = (splitmix(seed, i) >> 11) as f64 / (1u64 << 53) as f64;
    lo + (hi - lo) * unit as f32
}

/// Deterministic pseudo-random `u64` from an index and seed.
pub fn hash_u64(seed: u64, i: u64) -> u64 {
    splitmix(seed, i)
}

fn splitmix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_accepts_rounding_noise() {
        assert!(approx_eq_f32(1.0, 1.0 + 1e-6));
        assert!(!approx_eq_f32(1.0, 1.01));
        assert!(approx_eq_f32(f32::NAN, f32::NAN));
        assert!(!approx_eq_f32(f32::NAN, 1.0));
        assert!(approx_eq_f32(0.0, 1e-6));
    }

    #[test]
    fn hash_f32_is_deterministic_and_in_range() {
        for i in 0..100 {
            let v = hash_f32(7, i, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
            assert_eq!(v, hash_f32(7, i, -2.0, 3.0));
        }
        assert_ne!(hash_f32(7, 0, 0.0, 1.0), hash_f32(8, 0, 0.0, 1.0));
    }

    #[test]
    fn compare_buffers_reports_position() {
        let e = BufferData::F32(vec![1.0, 2.0]);
        let g = BufferData::F32(vec![1.0, 3.0]);
        let err = compare_buffers("x", 0, &e, &g).unwrap_err();
        assert!(err.contains("[1]"), "{err}");
        assert!(compare_buffers("x", 0, &e, &e.clone()).is_ok());
    }

    #[test]
    fn compare_buffers_rejects_type_and_len_mismatch() {
        let f = BufferData::F32(vec![1.0]);
        let i = BufferData::I32(vec![1]);
        assert!(compare_buffers("x", 0, &f, &i).is_err());
        let short = BufferData::F32(vec![]);
        assert!(compare_buffers("x", 0, &f, &short).is_err());
    }
}
