//! Application workloads (Rodinia / SHOC / vendor / department codes):
//! `kmeans`, `nearest_neighbor`, `nbody`, `md_lj`, `blackscholes`,
//! `mandelbrot`, `monte_carlo_pi`.

use hetpart_inspire::ir::NdRange;
use hetpart_inspire::vm::{ArgValue, BufferData};

use crate::workload::{hash_f32, hash_u64, Benchmark, Instance};

/// Dimensionality of the k-means points.
pub const KMEANS_DIMS: usize = 4;
/// Number of k-means clusters.
pub const KMEANS_K: usize = 8;
/// Neighbours per atom in the MD neighbour lists.
pub const MD_NEIGHBORS: usize = 16;
/// Mandelbrot iteration cap.
pub const MANDEL_MAX_ITER: i32 = 128;
/// Monte-Carlo samples per work-item.
pub const MC_SAMPLES: i32 = 256;

fn series(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..n).map(|i| hash_f32(seed, i as u64, lo, hi)).collect()
}

const KMEANS_SRC: &str = r#"
kernel void kmeans_assign(global const float* pts, global const float* ctr,
                          global int* assign, int k, int dims) {
    int i = get_global_id(0);
    float best = 1000000000.0;
    int best_c = 0;
    for (int c = 0; c < k; c++) {
        float d = 0.0;
        for (int j = 0; j < dims; j++) {
            float diff = pts[i * dims + j] - ctr[c * dims + j];
            d += diff * diff;
        }
        if (d < best) {
            best = d;
            best_c = c;
        }
    }
    assign[i] = best_c;
}
"#;

/// `kmeans` — Rodinia K-Means assignment step: nearest-centroid search
/// over a small table that every work-item re-reads.
pub fn kmeans() -> Benchmark {
    Benchmark {
        name: "kmeans",
        origin: "Rodinia",
        description: "k-means nearest-centroid assignment",
        source: KMEANS_SRC,
        sizes: &[1024, 4096, 16384, 65536, 262144, 1048576],
        setup: |n, seed| Instance {
            nd: NdRange::d1(n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Buffer(2),
                ArgValue::Int(KMEANS_K as i32),
                ArgValue::Int(KMEANS_DIMS as i32),
            ],
            bufs: vec![
                BufferData::F32(series(seed, n * KMEANS_DIMS, -10.0, 10.0)),
                BufferData::F32(series(seed ^ 81, KMEANS_K * KMEANS_DIMS, -10.0, 10.0)),
                BufferData::I32(vec![0; n]),
            ],
            outputs: vec![2],
        },
        reference: |inst| {
            let pts = inst.bufs[0].as_f32().expect("f32");
            let ctr = inst.bufs[1].as_f32().expect("f32");
            let n = inst.bufs[2].len();
            let mut assign = vec![0i32; n];
            for (i, a) in assign.iter_mut().enumerate() {
                let mut best = 1_000_000_000.0f64;
                let mut best_c = 0i32;
                for c in 0..KMEANS_K {
                    let mut d = 0.0f64;
                    for j in 0..KMEANS_DIMS {
                        let diff = f64::from(pts[i * KMEANS_DIMS + j])
                            - f64::from(ctr[c * KMEANS_DIMS + j]);
                        d += diff * diff;
                    }
                    if d < best {
                        best = d;
                        best_c = c as i32;
                    }
                }
                *a = best_c;
            }
            vec![(2, BufferData::I32(assign))]
        },
    }
}

const NN_SRC: &str = r#"
kernel void nearest_neighbor(global const float* lat, global const float* lng,
                             global float* dist, float plat, float plng) {
    int i = get_global_id(0);
    float dl = lat[i] - plat;
    float dg = lng[i] - plng;
    dist[i] = sqrt(dl * dl + dg * dg);
}
"#;

/// `nearest_neighbor` — Rodinia NN: per-record Euclidean distance to a
/// query point; short, sqrt-containing, memory-light.
pub fn nearest_neighbor() -> Benchmark {
    Benchmark {
        name: "nearest_neighbor",
        origin: "Rodinia",
        description: "distance computation to a query point",
        source: NN_SRC,
        sizes: &[1024, 4096, 16384, 65536, 262144, 1048576],
        setup: |n, seed| Instance {
            nd: NdRange::d1(n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Buffer(2),
                ArgValue::Float(30.5),
                ArgValue::Float(-75.25),
            ],
            bufs: vec![
                BufferData::F32(series(seed, n, -90.0, 90.0)),
                BufferData::F32(series(seed ^ 91, n, -180.0, 180.0)),
                BufferData::F32(vec![0.0; n]),
            ],
            outputs: vec![2],
        },
        reference: |inst| {
            let lat = inst.bufs[0].as_f32().expect("f32");
            let lng = inst.bufs[1].as_f32().expect("f32");
            let (plat, plng) = (30.5f64, -75.25f64);
            let out: Vec<f32> = lat
                .iter()
                .zip(lng)
                .map(|(a, b)| {
                    let dl = f64::from(*a) - plat;
                    let dg = f64::from(*b) - plng;
                    (dl * dl + dg * dg).sqrt() as f32
                })
                .collect();
            vec![(2, BufferData::F32(out))]
        },
    }
}

const NBODY_SRC: &str = r#"
kernel void nbody(global const float* px, global const float* py,
                  global const float* pz, global const float* mass,
                  global float* ax, global float* ay, global float* az,
                  int n, float eps) {
    int i = get_global_id(0);
    float xi = px[i];
    float yi = py[i];
    float zi = pz[i];
    float fx = 0.0;
    float fy = 0.0;
    float fz = 0.0;
    for (int j = 0; j < n; j++) {
        float dx = px[j] - xi;
        float dy = py[j] - yi;
        float dz = pz[j] - zi;
        float r2 = dx * dx + dy * dy + dz * dz + eps;
        float inv = rsqrt(r2);
        float inv3 = inv * inv * inv;
        float s = mass[j] * inv3;
        fx += dx * s;
        fy += dy * s;
        fz += dz * s;
    }
    ax[i] = fx;
    ay[i] = fy;
    az[i] = fz;
}
"#;

/// `nbody` — vendor NBody sample: all-pairs gravity, O(n) heavy FP work
/// per item; the compute-bound extreme of the suite.
pub fn nbody() -> Benchmark {
    Benchmark {
        name: "nbody",
        origin: "vendor sample",
        description: "all-pairs gravitational accelerations",
        source: NBODY_SRC,
        sizes: &[256, 512, 1024, 2048, 4096, 8192],
        setup: |n, seed| Instance {
            nd: NdRange::d1(n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Buffer(2),
                ArgValue::Buffer(3),
                ArgValue::Buffer(4),
                ArgValue::Buffer(5),
                ArgValue::Buffer(6),
                ArgValue::Int(n as i32),
                ArgValue::Float(0.01),
            ],
            bufs: vec![
                BufferData::F32(series(seed, n, -1.0, 1.0)),
                BufferData::F32(series(seed ^ 101, n, -1.0, 1.0)),
                BufferData::F32(series(seed ^ 102, n, -1.0, 1.0)),
                BufferData::F32(series(seed ^ 103, n, 0.1, 1.0)),
                BufferData::F32(vec![0.0; n]),
                BufferData::F32(vec![0.0; n]),
                BufferData::F32(vec![0.0; n]),
            ],
            outputs: vec![4, 5, 6],
        },
        reference: |inst| {
            let px = inst.bufs[0].as_f32().expect("f32");
            let py = inst.bufs[1].as_f32().expect("f32");
            let pz = inst.bufs[2].as_f32().expect("f32");
            let mass = inst.bufs[3].as_f32().expect("f32");
            let n = px.len();
            let eps = 0.01f64;
            let mut ax = vec![0.0f32; n];
            let mut ay = vec![0.0f32; n];
            let mut az = vec![0.0f32; n];
            for i in 0..n {
                let (xi, yi, zi) = (f64::from(px[i]), f64::from(py[i]), f64::from(pz[i]));
                let (mut fx, mut fy, mut fz) = (0.0f64, 0.0f64, 0.0f64);
                for j in 0..n {
                    let dx = f64::from(px[j]) - xi;
                    let dy = f64::from(py[j]) - yi;
                    let dz = f64::from(pz[j]) - zi;
                    let r2 = dx * dx + dy * dy + dz * dz + eps;
                    let inv = 1.0 / r2.sqrt();
                    let inv3 = inv * inv * inv;
                    let s = f64::from(mass[j]) * inv3;
                    fx += dx * s;
                    fy += dy * s;
                    fz += dz * s;
                }
                ax[i] = fx as f32;
                ay[i] = fy as f32;
                az[i] = fz as f32;
            }
            vec![
                (4, BufferData::F32(ax)),
                (5, BufferData::F32(ay)),
                (6, BufferData::F32(az)),
            ]
        },
    }
}

const MD_SRC: &str = r#"
kernel void md_lj(global const float* x, global const float* y,
                  global const float* z, global const int* neigh,
                  global float* fx, global float* fy, global float* fz,
                  int k, float cutoff2) {
    int i = get_global_id(0);
    float xi = x[i];
    float yi = y[i];
    float zi = z[i];
    float ax = 0.0;
    float ay = 0.0;
    float az = 0.0;
    for (int j = 0; j < k; j++) {
        int nb = neigh[i * k + j];
        float dx = x[nb] - xi;
        float dy = y[nb] - yi;
        float dz = z[nb] - zi;
        float r2 = dx * dx + dy * dy + dz * dz;
        if (r2 < cutoff2 && r2 > 0.000001) {
            float sr2 = 1.0 / r2;
            float sr6 = sr2 * sr2 * sr2;
            float force = sr6 * (sr6 - 0.5) * sr2;
            ax += dx * force;
            ay += dy * force;
            az += dz * force;
        }
    }
    fx[i] = ax;
    fy[i] = ay;
    fz[i] = az;
}
"#;

/// `md_lj` — SHOC MD: Lennard-Jones forces over per-atom neighbour lists;
/// gather-heavy with a data-dependent cutoff branch.
pub fn md_lj() -> Benchmark {
    Benchmark {
        name: "md_lj",
        origin: "SHOC",
        description: "Lennard-Jones forces over neighbour lists",
        source: MD_SRC,
        sizes: &[1024, 4096, 16384, 65536, 262144, 1048576],
        setup: |n, seed| {
            let neigh: Vec<i32> = (0..n * MD_NEIGHBORS)
                .map(|i| (hash_u64(seed ^ 111, i as u64) as usize % n) as i32)
                .collect();
            Instance {
                nd: NdRange::d1(n),
                args: vec![
                    ArgValue::Buffer(0),
                    ArgValue::Buffer(1),
                    ArgValue::Buffer(2),
                    ArgValue::Buffer(3),
                    ArgValue::Buffer(4),
                    ArgValue::Buffer(5),
                    ArgValue::Buffer(6),
                    ArgValue::Int(MD_NEIGHBORS as i32),
                    ArgValue::Float(4.0),
                ],
                bufs: vec![
                    BufferData::F32(series(seed, n, -8.0, 8.0)),
                    BufferData::F32(series(seed ^ 112, n, -8.0, 8.0)),
                    BufferData::F32(series(seed ^ 113, n, -8.0, 8.0)),
                    BufferData::I32(neigh),
                    BufferData::F32(vec![0.0; n]),
                    BufferData::F32(vec![0.0; n]),
                    BufferData::F32(vec![0.0; n]),
                ],
                outputs: vec![4, 5, 6],
            }
        },
        reference: |inst| {
            let x = inst.bufs[0].as_f32().expect("f32");
            let y = inst.bufs[1].as_f32().expect("f32");
            let z = inst.bufs[2].as_f32().expect("f32");
            let neigh = inst.bufs[3].as_i32().expect("i32");
            let n = x.len();
            let cutoff2 = 4.0f64;
            let mut fx = vec![0.0f32; n];
            let mut fy = vec![0.0f32; n];
            let mut fz = vec![0.0f32; n];
            for i in 0..n {
                let (xi, yi, zi) = (f64::from(x[i]), f64::from(y[i]), f64::from(z[i]));
                let (mut ax, mut ay, mut az) = (0.0f64, 0.0f64, 0.0f64);
                for j in 0..MD_NEIGHBORS {
                    let nb = neigh[i * MD_NEIGHBORS + j] as usize;
                    let dx = f64::from(x[nb]) - xi;
                    let dy = f64::from(y[nb]) - yi;
                    let dz = f64::from(z[nb]) - zi;
                    let r2 = dx * dx + dy * dy + dz * dz;
                    if r2 < cutoff2 && r2 > 0.000001 {
                        let sr2 = 1.0 / r2;
                        let sr6 = sr2 * sr2 * sr2;
                        let force = sr6 * (sr6 - 0.5) * sr2;
                        ax += dx * force;
                        ay += dy * force;
                        az += dz * force;
                    }
                }
                fx[i] = ax as f32;
                fy[i] = ay as f32;
                fz[i] = az as f32;
            }
            vec![
                (4, BufferData::F32(fx)),
                (5, BufferData::F32(fy)),
                (6, BufferData::F32(fz)),
            ]
        },
    }
}

const BLACKSCHOLES_SRC: &str = r#"
kernel void blackscholes(global const float* price, global const float* strike,
                         global const float* years, global float* call,
                         global float* put, float riskfree, float volatility) {
    int i = get_global_id(0);
    float s = price[i];
    float k = strike[i];
    float t = years[i];
    float sqrt_t = sqrt(t);
    float d1 = (log(s / k) + (riskfree + 0.5 * volatility * volatility) * t)
             / (volatility * sqrt_t);
    float d2 = d1 - volatility * sqrt_t;

    float kd1 = 1.0 / (1.0 + 0.2316419 * fabs(d1));
    float cnd1 = 1.0 - 0.39894228040143267794 * exp(-0.5 * d1 * d1)
        * kd1 * (0.31938153 + kd1 * (-0.356563782 + kd1 * (1.781477937
            + kd1 * (-1.821255978 + kd1 * 1.330274429))));
    if (d1 < 0.0) {
        cnd1 = 1.0 - cnd1;
    }
    float kd2 = 1.0 / (1.0 + 0.2316419 * fabs(d2));
    float cnd2 = 1.0 - 0.39894228040143267794 * exp(-0.5 * d2 * d2)
        * kd2 * (0.31938153 + kd2 * (-0.356563782 + kd2 * (1.781477937
            + kd2 * (-1.821255978 + kd2 * 1.330274429))));
    if (d2 < 0.0) {
        cnd2 = 1.0 - cnd2;
    }

    float expRT = exp(-riskfree * t);
    call[i] = s * cnd1 - k * expRT * cnd2;
    put[i] = k * expRT * (1.0 - cnd2) - s * (1.0 - cnd1);
}
"#;

/// `blackscholes` — vendor sample: European option pricing; the
/// transcendental-function stress test (log/exp/sqrt per item).
pub fn blackscholes() -> Benchmark {
    Benchmark {
        name: "blackscholes",
        origin: "vendor sample",
        description: "Black-Scholes European option pricing",
        source: BLACKSCHOLES_SRC,
        sizes: &[1024, 4096, 16384, 65536, 262144, 1048576],
        setup: |n, seed| Instance {
            nd: NdRange::d1(n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Buffer(2),
                ArgValue::Buffer(3),
                ArgValue::Buffer(4),
                ArgValue::Float(0.02),
                ArgValue::Float(0.30),
            ],
            bufs: vec![
                BufferData::F32(series(seed, n, 5.0, 30.0)),
                BufferData::F32(series(seed ^ 121, n, 1.0, 100.0)),
                BufferData::F32(series(seed ^ 122, n, 0.25, 10.0)),
                BufferData::F32(vec![0.0; n]),
                BufferData::F32(vec![0.0; n]),
            ],
            outputs: vec![3, 4],
        },
        reference: |inst| {
            let price = inst.bufs[0].as_f32().expect("f32");
            let strike = inst.bufs[1].as_f32().expect("f32");
            let years = inst.bufs[2].as_f32().expect("f32");
            let n = price.len();
            let (riskfree, volatility) = (0.02f64, 0.30f64);
            let cnd = |d: f64| -> f64 {
                let k = 1.0 / (1.0 + 0.2316419 * d.abs());
                let c = 1.0
                    - 0.398_942_280_401_432_7
                        * (-0.5 * d * d).exp()
                        * k
                        * (0.31938153
                            + k * (-0.356563782
                                + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
                if d < 0.0 {
                    1.0 - c
                } else {
                    c
                }
            };
            let mut call = vec![0.0f32; n];
            let mut put = vec![0.0f32; n];
            for i in 0..n {
                let s = f64::from(price[i]);
                let k = f64::from(strike[i]);
                let t = f64::from(years[i]);
                let sqrt_t = t.sqrt();
                let d1 = ((s / k).ln() + (riskfree + 0.5 * volatility * volatility) * t)
                    / (volatility * sqrt_t);
                let d2 = d1 - volatility * sqrt_t;
                let cnd1 = cnd(d1);
                let cnd2 = cnd(d2);
                let exp_rt = (-riskfree * t).exp();
                call[i] = (s * cnd1 - k * exp_rt * cnd2) as f32;
                put[i] = (k * exp_rt * (1.0 - cnd2) - s * (1.0 - cnd1)) as f32;
            }
            vec![(3, BufferData::F32(call)), (4, BufferData::F32(put))]
        },
    }
}

const MANDEL_SRC: &str = r#"
kernel void mandelbrot(global int* out, int w, int h, int max_iter,
                       float x0, float y0, float dx, float dy) {
    int px = get_global_id(0);
    int py = get_global_id(1);
    float cx = x0 + (float)px * dx;
    float cy = y0 + (float)py * dy;
    float zx = 0.0;
    float zy = 0.0;
    int it = 0;
    while (zx * zx + zy * zy <= 4.0 && it < max_iter) {
        float t = zx * zx - zy * zy + cx;
        zy = 2.0 * zx * zy + cy;
        zx = t;
        it = it + 1;
    }
    out[py * w + px] = it;
}
"#;

/// `mandelbrot` — vendor sample: escape-time iteration; extreme
/// control-flow divergence and *zero* input transfer (output only).
pub fn mandelbrot() -> Benchmark {
    Benchmark {
        name: "mandelbrot",
        origin: "vendor sample",
        description: "Mandelbrot escape-time fractal",
        source: MANDEL_SRC,
        sizes: &[16, 32, 64, 128, 256, 512],
        setup: |n, _seed| Instance {
            nd: NdRange::d2(n, n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::Int(n as i32),
                ArgValue::Int(n as i32),
                ArgValue::Int(MANDEL_MAX_ITER),
                ArgValue::Float(-2.0),
                ArgValue::Float(-1.25),
                ArgValue::Float(2.5 / n as f32),
                ArgValue::Float(2.5 / n as f32),
            ],
            bufs: vec![BufferData::I32(vec![0; n * n])],
            outputs: vec![0],
        },
        reference: |inst| {
            let n = inst.nd.dim(0);
            let (x0, y0) = (-2.0f64, -1.25f64);
            let dx = f64::from(2.5f32 / n as f32);
            let dy = f64::from(2.5f32 / n as f32);
            let mut out = vec![0i32; n * n];
            for py in 0..n {
                for px in 0..n {
                    let cx = x0 + px as f64 * dx;
                    let cy = y0 + py as f64 * dy;
                    // Mirror the kernel's f32-rounded temporaries exactly:
                    // every float expression rounds to f32 on store.
                    let cx = f64::from(cx as f32);
                    let cy = f64::from(cy as f32);
                    let mut zx = 0.0f64;
                    let mut zy = 0.0f64;
                    let mut it = 0i32;
                    while zx * zx + zy * zy <= 4.0 && it < MANDEL_MAX_ITER {
                        let t = f64::from((zx * zx - zy * zy + cx) as f32);
                        zy = f64::from((2.0 * zx * zy + cy) as f32);
                        zx = t;
                        it += 1;
                    }
                    out[py * n + px] = it;
                }
            }
            vec![(0, BufferData::I32(out))]
        },
    }
}

const MC_PI_SRC: &str = r#"
kernel void monte_carlo_pi(global uint* hits, uint seed, int samples) {
    int i = get_global_id(0);
    uint s = seed + (uint)i * 2654435761u;
    if (s == 0u) {
        s = 1u;
    }
    uint count = 0u;
    for (int j = 0; j < samples; j++) {
        s = s ^ (s << 13);
        s = s ^ (s >> 17);
        s = s ^ (s << 5);
        float x = (float)(s & 65535u) / 65536.0;
        s = s ^ (s << 13);
        s = s ^ (s >> 17);
        s = s ^ (s << 5);
        float y = (float)(s & 65535u) / 65536.0;
        if (x * x + y * y <= 1.0) {
            count = count + 1u;
        }
    }
    hits[i] = count;
}
"#;

/// `monte_carlo_pi` — department code: in-kernel xorshift32 PRNG, trivial
/// transfers, pure compute; π estimation by rejection sampling.
pub fn monte_carlo_pi() -> Benchmark {
    Benchmark {
        name: "monte_carlo_pi",
        origin: "department code",
        description: "Monte-Carlo pi estimation with in-kernel PRNG",
        source: MC_PI_SRC,
        sizes: &[1024, 4096, 16384, 65536, 262144, 1048576],
        setup: |n, _seed| Instance {
            nd: NdRange::d1(n),
            args: vec![
                ArgValue::Buffer(0),
                ArgValue::UInt(0x9E3779B9),
                ArgValue::Int(MC_SAMPLES),
            ],
            bufs: vec![BufferData::U32(vec![0; n])],
            outputs: vec![0],
        },
        reference: |inst| {
            let n = inst.bufs[0].len();
            let seed = 0x9E3779B9u32;
            let mut hits = vec![0u32; n];
            for (i, h) in hits.iter_mut().enumerate() {
                let mut s = seed.wrapping_add((i as u32).wrapping_mul(2654435761));
                if s == 0 {
                    s = 1;
                }
                let mut count = 0u32;
                for _ in 0..MC_SAMPLES {
                    s ^= s << 13;
                    s ^= s >> 17;
                    s ^= s << 5;
                    let x = f64::from((s & 65535) as f32) / 65536.0;
                    s ^= s << 13;
                    s ^= s >> 17;
                    s ^= s << 5;
                    let y = f64::from((s & 65535) as f32) / 65536.0;
                    if x * x + y * y <= 1.0 {
                        count += 1;
                    }
                }
                *h = count;
            }
            vec![(0, BufferData::U32(hits))]
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_verifies() {
        kmeans().run_and_verify(1024).unwrap();
    }

    #[test]
    fn nearest_neighbor_verifies() {
        nearest_neighbor().run_and_verify(1024).unwrap();
    }

    #[test]
    fn nbody_verifies() {
        nbody().run_and_verify(256).unwrap();
    }

    #[test]
    fn md_lj_verifies() {
        md_lj().run_and_verify(1024).unwrap();
    }

    #[test]
    fn blackscholes_verifies() {
        blackscholes().run_and_verify(1024).unwrap();
    }

    #[test]
    fn mandelbrot_verifies() {
        mandelbrot().run_and_verify(16).unwrap();
    }

    #[test]
    fn monte_carlo_pi_verifies() {
        monte_carlo_pi().run_and_verify(1024).unwrap();
    }

    #[test]
    fn monte_carlo_estimates_pi() {
        let b = monte_carlo_pi();
        let inst = (b.setup)(4096, 0);
        let expected = (b.reference)(&inst);
        let BufferData::U32(hits) = &expected[0].1 else {
            panic!()
        };
        let total: u64 = hits.iter().map(|&h| u64::from(h)).sum();
        let samples = 4096u64 * MC_SAMPLES as u64;
        let pi = 4.0 * total as f64 / samples as f64;
        assert!((pi - std::f64::consts::PI).abs() < 0.02, "pi estimate {pi}");
    }

    #[test]
    fn mandelbrot_interior_hits_iteration_cap() {
        let b = mandelbrot();
        let inst = (b.setup)(32, 0);
        let expected = (b.reference)(&inst);
        let BufferData::I32(out) = &expected[0].1 else {
            panic!()
        };
        // The set's interior (around the origin of the image) must
        // saturate; the far exterior must escape almost immediately.
        assert!(out.contains(&MANDEL_MAX_ITER));
        assert!(out.iter().any(|&v| v <= 2));
    }

    #[test]
    fn kmeans_assignment_is_in_range() {
        let b = kmeans();
        let inst = (b.setup)(1024, 1);
        let expected = (b.reference)(&inst);
        let BufferData::I32(assign) = &expected[0].1 else {
            panic!()
        };
        assert!(assign.iter().all(|&a| (0..KMEANS_K as i32).contains(&a)));
        // More than one cluster should actually be used.
        let first = assign[0];
        assert!(assign.iter().any(|&a| a != first));
    }
}
