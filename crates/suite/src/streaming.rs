//! Streaming and reduction workloads (vendor samples / SHOC): `vec_add`,
//! `triad`, `dot_product`, `reduction_sum`.

use hetpart_inspire::ir::NdRange;
use hetpart_inspire::vm::{ArgValue, BufferData};

use crate::workload::{hash_f32, Benchmark, Instance};

/// Elements each work-item reduces in the block-reduction kernels.
pub const REDUCTION_BLOCK: usize = 64;

const VEC_ADD_SRC: &str = r#"
kernel void vec_add(global const float* a, global const float* b,
                    global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}
"#;

/// `vec_add` — element-wise vector addition (vendor "hello world" of
/// OpenCL); 1:1 flop/byte, fully memory/transfer bound.
pub fn vec_add() -> Benchmark {
    Benchmark {
        name: "vec_add",
        origin: "vendor sample",
        description: "element-wise vector addition",
        source: VEC_ADD_SRC,
        sizes: &[1024, 4096, 16384, 65536, 262144, 1048576],
        setup: |n, seed| {
            let a: Vec<f32> = (0..n)
                .map(|i| hash_f32(seed, i as u64, -1.0, 1.0))
                .collect();
            let b: Vec<f32> = (0..n)
                .map(|i| hash_f32(seed ^ 1, i as u64, -1.0, 1.0))
                .collect();
            Instance {
                nd: NdRange::d1(n),
                args: vec![
                    ArgValue::Buffer(0),
                    ArgValue::Buffer(1),
                    ArgValue::Buffer(2),
                    ArgValue::Int(n as i32),
                ],
                bufs: vec![
                    BufferData::F32(a),
                    BufferData::F32(b),
                    BufferData::F32(vec![0.0; n]),
                ],
                outputs: vec![2],
            }
        },
        reference: |inst| {
            let a = inst.bufs[0].as_f32().expect("f32 input");
            let b = inst.bufs[1].as_f32().expect("f32 input");
            let c: Vec<f32> = a
                .iter()
                .zip(b)
                .map(|(x, y)| (f64::from(*x) + f64::from(*y)) as f32)
                .collect();
            vec![(2, BufferData::F32(c))]
        },
    }
}

const TRIAD_SRC: &str = r#"
kernel void triad(global const float* a, global const float* b,
                  global float* c, float s, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + s * b[i];
    }
}
"#;

/// `triad` — STREAM/SHOC Triad `c = a + s·b`; the canonical bandwidth
/// benchmark.
pub fn triad() -> Benchmark {
    Benchmark {
        name: "triad",
        origin: "SHOC",
        description: "STREAM triad c = a + s*b",
        source: TRIAD_SRC,
        sizes: &[1024, 4096, 16384, 65536, 262144, 1048576],
        setup: |n, seed| {
            let a: Vec<f32> = (0..n)
                .map(|i| hash_f32(seed, i as u64, -2.0, 2.0))
                .collect();
            let b: Vec<f32> = (0..n)
                .map(|i| hash_f32(seed ^ 2, i as u64, -2.0, 2.0))
                .collect();
            Instance {
                nd: NdRange::d1(n),
                args: vec![
                    ArgValue::Buffer(0),
                    ArgValue::Buffer(1),
                    ArgValue::Buffer(2),
                    ArgValue::Float(1.75),
                    ArgValue::Int(n as i32),
                ],
                bufs: vec![
                    BufferData::F32(a),
                    BufferData::F32(b),
                    BufferData::F32(vec![0.0; n]),
                ],
                outputs: vec![2],
            }
        },
        reference: |inst| {
            let a = inst.bufs[0].as_f32().expect("f32 input");
            let b = inst.bufs[1].as_f32().expect("f32 input");
            let s = 1.75f64;
            let c: Vec<f32> = a
                .iter()
                .zip(b)
                .map(|(x, y)| (f64::from(*x) + s * f64::from(*y)) as f32)
                .collect();
            vec![(2, BufferData::F32(c))]
        },
    }
}

const DOT_SRC: &str = r#"
kernel void dot_product(global const float* a, global const float* b,
                        global float* partial, int block) {
    int i = get_global_id(0);
    int base = i * block;
    float s = 0.0;
    for (int j = 0; j < block; j++) {
        s += a[base + j] * b[base + j];
    }
    partial[i] = s;
}
"#;

/// `dot_product` — blocked dot product: each work-item reduces a
/// contiguous block to one partial sum (the standard OpenCL reduction
/// shape without local memory).
pub fn dot_product() -> Benchmark {
    Benchmark {
        name: "dot_product",
        origin: "vendor sample",
        description: "blocked dot product with per-item partial sums",
        source: DOT_SRC,
        sizes: &[4096, 16384, 65536, 262144, 1048576, 4194304],
        setup: |n, seed| {
            let items = n / REDUCTION_BLOCK;
            let a: Vec<f32> = (0..n)
                .map(|i| hash_f32(seed, i as u64, -1.0, 1.0))
                .collect();
            let b: Vec<f32> = (0..n)
                .map(|i| hash_f32(seed ^ 3, i as u64, -1.0, 1.0))
                .collect();
            Instance {
                nd: NdRange::d1(items),
                args: vec![
                    ArgValue::Buffer(0),
                    ArgValue::Buffer(1),
                    ArgValue::Buffer(2),
                    ArgValue::Int(REDUCTION_BLOCK as i32),
                ],
                bufs: vec![
                    BufferData::F32(a),
                    BufferData::F32(b),
                    BufferData::F32(vec![0.0; items]),
                ],
                outputs: vec![2],
            }
        },
        reference: |inst| {
            let a = inst.bufs[0].as_f32().expect("f32 input");
            let b = inst.bufs[1].as_f32().expect("f32 input");
            let items = inst.bufs[2].len();
            let mut out = vec![0.0f32; items];
            for (i, o) in out.iter_mut().enumerate() {
                let mut s = 0.0f64;
                for j in 0..REDUCTION_BLOCK {
                    let k = i * REDUCTION_BLOCK + j;
                    s += f64::from(a[k]) * f64::from(b[k]);
                }
                *o = s as f32;
            }
            vec![(2, BufferData::F32(out))]
        },
    }
}

const REDUCTION_SRC: &str = r#"
kernel void reduction_sum(global const float* a, global float* partial,
                          int block, int n) {
    int i = get_global_id(0);
    int base = i * block;
    float s = 0.0;
    for (int j = 0; j < block; j++) {
        int k = base + j;
        if (k < n) {
            s += a[k];
        }
    }
    partial[i] = s;
}
"#;

/// `reduction_sum` — SHOC Reduction: blocked sum with a bounds guard in
/// the inner loop.
pub fn reduction_sum() -> Benchmark {
    Benchmark {
        name: "reduction_sum",
        origin: "SHOC",
        description: "blocked sum reduction to per-item partials",
        source: REDUCTION_SRC,
        sizes: &[4096, 16384, 65536, 262144, 1048576, 4194304],
        setup: |n, seed| {
            let items = n.div_ceil(REDUCTION_BLOCK);
            let a: Vec<f32> = (0..n).map(|i| hash_f32(seed, i as u64, 0.0, 1.0)).collect();
            Instance {
                nd: NdRange::d1(items),
                args: vec![
                    ArgValue::Buffer(0),
                    ArgValue::Buffer(1),
                    ArgValue::Int(REDUCTION_BLOCK as i32),
                    ArgValue::Int(n as i32),
                ],
                bufs: vec![BufferData::F32(a), BufferData::F32(vec![0.0; items])],
                outputs: vec![1],
            }
        },
        reference: |inst| {
            let a = inst.bufs[0].as_f32().expect("f32 input");
            let items = inst.bufs[1].len();
            let mut out = vec![0.0f32; items];
            for (i, o) in out.iter_mut().enumerate() {
                let mut s = 0.0f64;
                for j in 0..REDUCTION_BLOCK {
                    let k = i * REDUCTION_BLOCK + j;
                    if k < a.len() {
                        s += f64::from(a[k]);
                    }
                }
                *o = s as f32;
            }
            vec![(1, BufferData::F32(out))]
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_add_verifies() {
        vec_add().run_and_verify(1024).unwrap();
    }

    #[test]
    fn triad_verifies() {
        triad().run_and_verify(1024).unwrap();
    }

    #[test]
    fn dot_product_verifies() {
        dot_product().run_and_verify(4096).unwrap();
    }

    #[test]
    fn reduction_sum_verifies() {
        reduction_sum().run_and_verify(4096).unwrap();
    }

    #[test]
    fn reduction_guard_handles_non_multiple_sizes() {
        // A size that is not a multiple of the block exercises the bounds
        // check in the inner loop.
        let b = reduction_sum();
        let inst = (b.setup)(4096 + 17, 9);
        let kernel = b.compile();
        let mut bufs = inst.bufs.clone();
        let mut vm = hetpart_inspire::vm::Vm::new();
        vm.run_range(
            &kernel.bytecode,
            &inst.nd,
            0..inst.nd.split_extent(),
            &inst.args,
            &mut bufs,
        )
        .unwrap();
        b.check_outputs(&inst, &bufs).unwrap();
    }
}
