//! The trained partition predictor and the deployment-phase framework.

use hetpart_inspire::ir::NdRange;
use hetpart_inspire::vm::{ArgValue, BufferData};
use hetpart_inspire::{CompiledKernel, VmError};
use hetpart_ml::{ModelConfig, Pipeline};
use hetpart_runtime::{
    runtime_features, ExecutionReport, Executor, Launch, Partition, RuntimeFeatures,
};
use serde::{Deserialize, Serialize};

use crate::db::{FeatureSet, TrainingDb};

/// Compress heavy-tailed count features (`items`, bytes, op counts span
/// six orders of magnitude) before scaling: `x -> ln(1 + x)`. Applied
/// symmetrically at training and prediction time.
pub fn log_compress(features: &[f64]) -> Vec<f64> {
    features.iter().map(|&x| (1.0 + x.max(0.0)).ln()).collect()
}

/// The offline-generated prediction model: maps a feature vector to a
/// task partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionPredictor {
    /// Dense class → partitioning mapping.
    pub label_space: Vec<Partition>,
    pub pipeline: Pipeline,
    pub feature_set: FeatureSet,
}

impl PartitionPredictor {
    /// Train on a database with the given model family and feature set.
    ///
    /// # Panics
    /// Panics on an empty database.
    pub fn train(db: &TrainingDb, model: &ModelConfig, feature_set: FeatureSet) -> Self {
        let (data, label_space) = db.to_dataset(feature_set);
        assert!(
            !data.is_empty(),
            "cannot train a predictor on an empty database"
        );
        let x: Vec<Vec<f64>> = data.x.iter().map(|r| log_compress(r)).collect();
        let pipeline = Pipeline::fit(model, &x, &data.y, label_space.len());
        Self {
            label_space,
            pipeline,
            feature_set,
        }
    }

    /// Predict a partitioning from a raw feature vector (already matching
    /// this predictor's feature set).
    pub fn predict_vec(&self, features: &[f64]) -> Partition {
        let class = self.pipeline.predict(&log_compress(features));
        self.label_space[class.min(self.label_space.len() - 1)].clone()
    }

    /// Predict from a compiled kernel's static features plus collected
    /// runtime features.
    pub fn predict(&self, kernel: &CompiledKernel, rt: &RuntimeFeatures) -> Partition {
        let features = match self.feature_set {
            FeatureSet::StaticOnly => kernel.static_features.to_vec(),
            FeatureSet::RuntimeOnly => rt.to_vec(),
            FeatureSet::Both => {
                let mut v = kernel.static_features.to_vec();
                v.extend(rt.to_vec());
                v
            }
        };
        self.predict_vec(&features)
    }
}

/// The deployed system: executor + trained predictor. Mirrors the paper's
/// deployment phase — when a (new) program is launched, its static
/// features and freshly collected runtime features are fed to the model,
/// and the launch runs with the predicted partitioning.
#[derive(Debug, Clone)]
pub struct Framework {
    pub executor: Executor,
    pub predictor: PartitionPredictor,
}

impl Framework {
    /// Predict the partitioning for a launch without executing it.
    pub fn plan(
        &self,
        kernel: &CompiledKernel,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &[BufferData],
    ) -> Result<Partition, VmError> {
        let rt = runtime_features(kernel, nd, args, bufs, self.executor.sample_items)?;
        Ok(self.predictor.predict(kernel, &rt))
    }

    /// Plan and execute: returns the chosen partitioning and the full
    /// execution report; output buffers receive the kernel results.
    pub fn run_auto(
        &self,
        kernel: &CompiledKernel,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &mut [BufferData],
    ) -> Result<(Partition, ExecutionReport), VmError> {
        let partition = self.plan(kernel, nd, args, bufs)?;
        let launch = Launch::new(kernel, nd.clone(), args.to_vec());
        let report = self.executor.run(&launch, bufs, &partition)?;
        Ok((partition, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HarnessConfig;
    use crate::train::collect_training_db;
    use hetpart_ml::TreeConfig;
    use hetpart_oclsim::machines;

    fn small_db() -> TrainingDb {
        let benches: Vec<_> = hetpart_suite::all()
            .into_iter()
            .filter(|b| ["vec_add", "nbody", "blackscholes", "sgemm"].contains(&b.name))
            .collect();
        let cfg = HarnessConfig {
            sizes_per_benchmark: 2,
            sample_items: 32,
            step_tenths: 5,
            ..HarnessConfig::quick()
        };
        collect_training_db(&machines::mc2(), &benches, &cfg)
    }

    #[test]
    fn trains_and_predicts_valid_partitions() {
        let db = small_db();
        let p = PartitionPredictor::train(
            &db,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::Both,
        );
        for r in &db.records {
            let pred = p.predict_vec(&r.features(FeatureSet::Both));
            assert_eq!(pred.num_devices(), 3);
            assert!(p.label_space.contains(&pred));
        }
    }

    #[test]
    fn training_set_predictions_recover_oracle_labels() {
        // A tree evaluated on its own training set should match the oracle
        // labels nearly always — this checks the label plumbing, not
        // generalization.
        let db = small_db();
        let p = PartitionPredictor::train(
            &db,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::Both,
        );
        let hits = db
            .records
            .iter()
            .filter(|r| p.predict_vec(&r.features(FeatureSet::Both)) == r.best().partition)
            .count();
        assert!(
            hits * 10 >= db.records.len() * 8,
            "tree should fit its training set: {hits}/{}",
            db.records.len()
        );
    }

    #[test]
    fn framework_runs_auto_and_produces_correct_outputs() {
        let db = small_db();
        let predictor = PartitionPredictor::train(
            &db,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::Both,
        );
        let fw = Framework {
            executor: Executor::new(machines::mc2()),
            predictor,
        };
        // Deploy on a program the model has seen and one it has not.
        for name in ["vec_add", "triad"] {
            let bench = hetpart_suite::by_name(name).unwrap();
            let kernel = bench.compile();
            let inst = bench.instance(bench.smallest_size());
            let mut bufs = inst.bufs.clone();
            let (partition, report) = fw
                .run_auto(&kernel, &inst.nd, &inst.args, &mut bufs)
                .unwrap();
            assert_eq!(partition.num_devices(), 3);
            assert!(report.time > 0.0);
            bench
                .check_outputs(&inst, &bufs)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn predictor_serde_roundtrip() {
        let db = small_db();
        let p = PartitionPredictor::train(&db, &ModelConfig::Knn { k: 3 }, FeatureSet::RuntimeOnly);
        let js = serde_json::to_string(&p).unwrap();
        let back: PartitionPredictor = serde_json::from_str(&js).unwrap();
        let f = db.records[0].features(FeatureSet::RuntimeOnly);
        assert_eq!(p.predict_vec(&f), back.predict_vec(&f));
    }
}
