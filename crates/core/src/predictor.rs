//! The trained partition predictor and the deployment-phase framework.

use std::fmt;

use hetpart_inspire::ir::NdRange;
use hetpart_inspire::vm::{ArgValue, BufferData};
use hetpart_inspire::{CompiledKernel, VmError};
use hetpart_ml::{ModelConfig, Pipeline};
use hetpart_runtime::{
    runtime_features, ExecPlan, ExecutionReport, Executor, Launch, LaunchError, Partition,
    RuntimeFeatures,
};
use serde::{Deserialize, Serialize};

use crate::db::{DbError, FeatureSet, ShardedDb, TrainingDb};

/// Why a prediction could not be made. Every variant used to be a silent
/// wrong answer: an out-of-range class was clamped to the last label, an
/// empty label space underflow-panicked, and a feature vector of the wrong
/// dimension was fed straight into the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictError {
    /// The predictor has no labels to map classes onto.
    EmptyLabelSpace,
    /// The pipeline was fitted for a different number of classes than the
    /// label space holds — a prediction could index past the labels or
    /// never reach some of them.
    ClassCountMismatch { model_classes: usize, labels: usize },
    /// The input feature vector does not match the dimension the pipeline
    /// was fitted on (wrong feature set, foreign database, …).
    FeatureDimMismatch { expected: usize, got: usize },
    /// The model produced a class index outside the label space.
    ClassOutOfRange { class: usize, labels: usize },
    /// The label space predicts partitions for a different device count
    /// than the machine the framework deploys on.
    ArityMismatch {
        partition_devices: usize,
        machine_devices: usize,
    },
    /// The predictor was trained on a different machine than the one it is
    /// deploying on — its label space and learned boundaries are
    /// meaningless there.
    MachineMismatch {
        trained_on: String,
        deploying_on: String,
    },
    /// The deployment machine has the training machine's *name* but
    /// different hardware — the device profiles changed since training.
    MachineFingerprintMismatch {
        machine: String,
        trained: u64,
        deployed: u64,
    },
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::EmptyLabelSpace => write!(f, "predictor has an empty label space"),
            PredictError::ClassCountMismatch {
                model_classes,
                labels,
            } => write!(
                f,
                "pipeline was fitted for {model_classes} classes but the label space has {labels}"
            ),
            PredictError::FeatureDimMismatch { expected, got } => write!(
                f,
                "feature vector has {got} entries but the predictor was trained on {expected}"
            ),
            PredictError::ClassOutOfRange { class, labels } => write!(
                f,
                "model predicted class {class} outside the label space of {labels} partitions"
            ),
            PredictError::ArityMismatch {
                partition_devices,
                machine_devices,
            } => write!(
                f,
                "label space predicts partitions for {partition_devices} devices but the machine \
                 has {machine_devices}"
            ),
            PredictError::MachineMismatch {
                trained_on,
                deploying_on,
            } => write!(
                f,
                "predictor was trained on machine `{trained_on}` but is deploying on \
                 `{deploying_on}` — retrain on the deployment machine (or load its predictor)"
            ),
            PredictError::MachineFingerprintMismatch {
                machine,
                trained,
                deployed,
            } => write!(
                f,
                "predictor was trained on a machine named `{machine}` with hardware fingerprint \
                 {trained:#018x}, but this `{machine}` fingerprints as {deployed:#018x} — the \
                 device profiles changed since training; retrain on the current profile"
            ),
        }
    }
}

impl std::error::Error for PredictError {}

/// A deployment-phase failure: the launch itself failed in the VM, the
/// predictor refused the inputs, a device faulted, or the serving layer
/// refused / lost the job (overload, shutdown, worker panic).
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    Vm(VmError),
    Predict(PredictError),
    /// A service worker panicked while handling the launch; the payload
    /// message is preserved so the client sees the cause instead of a
    /// hung ticket.
    Worker(String),
    /// A device failed during the launch and the service could not route
    /// around it (retries exhausted and no surviving devices to re-plan
    /// onto). `permanent` distinguishes a dead device from a transient
    /// execution fault; `device_name` is the registry (profile) name of
    /// the faulty device.
    Fault {
        device: usize,
        device_name: String,
        permanent: bool,
    },
    /// Admission control refused the launch: the queue held `depth` jobs,
    /// at or above the configured bound (and stayed there past the
    /// admission deadline under a blocking policy).
    Overloaded {
        depth: usize,
    },
    /// The job was shed after admission: the service shut down (or hit its
    /// drain deadline) before a worker picked the job up.
    Shed,
    /// The service could not be brought up (worker thread spawn failed or
    /// the configuration is invalid).
    Config(String),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Vm(e) => write!(f, "launch failed: {e}"),
            DeployError::Predict(e) => write!(f, "prediction failed: {e}"),
            DeployError::Worker(msg) => write!(f, "service worker panicked: {msg}"),
            DeployError::Fault {
                device,
                device_name,
                permanent,
            } => {
                let kind = if *permanent { "died" } else { "faulted" };
                write!(
                    f,
                    "device {device} (`{device_name}`) {kind} and the launch could not be re-planned"
                )
            }
            DeployError::Overloaded { depth } => {
                write!(
                    f,
                    "service overloaded: {depth} jobs queued, submission shed"
                )
            }
            DeployError::Shed => write!(f, "job shed before execution (service shutting down)"),
            DeployError::Config(msg) => write!(f, "service configuration rejected: {msg}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<VmError> for DeployError {
    fn from(e: VmError) -> Self {
        DeployError::Vm(e)
    }
}

impl From<PredictError> for DeployError {
    fn from(e: PredictError) -> Self {
        DeployError::Predict(e)
    }
}

impl From<LaunchError> for DeployError {
    fn from(e: LaunchError) -> Self {
        match e {
            LaunchError::Vm(e) => DeployError::Vm(e),
            LaunchError::DeviceFault {
                device,
                device_name,
                permanent,
            } => DeployError::Fault {
                device: device.0,
                device_name,
                permanent,
            },
        }
    }
}

/// Compress heavy-tailed count features (`items`, bytes, op counts span
/// six orders of magnitude) before scaling: `x -> ln(1 + x)`. Applied
/// symmetrically at training and prediction time.
pub fn log_compress(features: &[f64]) -> Vec<f64> {
    features.iter().map(|&x| (1.0 + x.max(0.0)).ln()).collect()
}

/// The offline-generated prediction model: maps a feature vector to a
/// task partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionPredictor {
    /// Registry name of the machine the training measurements were taken
    /// on. A predictor only deploys on that machine.
    pub machine: String,
    /// Hardware fingerprint ([`hetpart_oclsim::Machine::fingerprint`]) of
    /// the training machine — catches a machine whose device profiles
    /// changed under an unchanged name.
    pub machine_fingerprint: u64,
    /// Dense class → partitioning mapping.
    pub label_space: Vec<Partition>,
    pub pipeline: Pipeline,
    pub feature_set: FeatureSet,
    /// Input dimension the pipeline was fitted on; every prediction input
    /// is validated against it.
    pub feature_dim: usize,
}

impl PartitionPredictor {
    /// Assemble a predictor, validating that the pieces agree: the label
    /// space must be non-empty and exactly as large as the class count the
    /// pipeline was fitted for. A mismatch used to surface only as a
    /// silently clamped (wrong) partition at predict time.
    pub fn new(
        machine: String,
        machine_fingerprint: u64,
        label_space: Vec<Partition>,
        pipeline: Pipeline,
        feature_set: FeatureSet,
        feature_dim: usize,
    ) -> Result<Self, PredictError> {
        if label_space.is_empty() {
            return Err(PredictError::EmptyLabelSpace);
        }
        let model_classes = pipeline.n_classes();
        if model_classes != label_space.len() {
            return Err(PredictError::ClassCountMismatch {
                model_classes,
                labels: label_space.len(),
            });
        }
        Ok(Self {
            machine,
            machine_fingerprint,
            label_space,
            pipeline,
            feature_set,
            feature_dim,
        })
    }

    /// Train on a database with the given model family and feature set.
    ///
    /// # Panics
    /// Panics on an empty database.
    pub fn train(db: &TrainingDb, model: &ModelConfig, feature_set: FeatureSet) -> Self {
        let (data, label_space) = db.to_dataset(feature_set);
        assert!(
            !data.is_empty(),
            "cannot train a predictor on an empty database"
        );
        let feature_dim = data.dim();
        let x: Vec<Vec<f64>> = data.x.iter().map(|r| log_compress(r)).collect();
        let pipeline = Pipeline::fit(model, &x, &data.y, label_space.len());
        Self::new(
            db.machine.clone(),
            db.machine_fingerprint,
            label_space,
            pipeline,
            feature_set,
            feature_dim,
        )
        .expect("a pipeline fitted on its own dataset is consistent")
    }

    /// Train on the merged view of one or more shard stores (collected by
    /// different processes, or a single resumable run). The merged
    /// database is canonical, so the resulting predictor is bit-identical
    /// to [`PartitionPredictor::train`] on a monolithic collection of the
    /// same measurements, regardless of shard order.
    pub fn train_from_shards(
        shards: &[&ShardedDb],
        model: &ModelConfig,
        feature_set: FeatureSet,
    ) -> Result<Self, DbError> {
        let db = ShardedDb::merge(shards)?;
        Ok(Self::train(&db, model, feature_set))
    }

    /// Predict a partitioning from a raw feature vector (already matching
    /// this predictor's feature set).
    ///
    /// Fails with a named [`PredictError`] instead of returning a
    /// plausible-but-wrong partition: the input dimension is checked
    /// against the fitted dimension, and a class index outside the label
    /// space is an error, not a clamp.
    pub fn predict_vec(&self, features: &[f64]) -> Result<Partition, PredictError> {
        if self.label_space.is_empty() {
            return Err(PredictError::EmptyLabelSpace);
        }
        if features.len() != self.feature_dim {
            return Err(PredictError::FeatureDimMismatch {
                expected: self.feature_dim,
                got: features.len(),
            });
        }
        let class = self.pipeline.predict(&log_compress(features));
        self.label_space
            .get(class)
            .cloned()
            .ok_or(PredictError::ClassOutOfRange {
                class,
                labels: self.label_space.len(),
            })
    }

    /// Predict from a compiled kernel's static features plus collected
    /// runtime features.
    pub fn predict(
        &self,
        kernel: &CompiledKernel,
        rt: &RuntimeFeatures,
    ) -> Result<Partition, PredictError> {
        let features = match self.feature_set {
            FeatureSet::StaticOnly => kernel.static_features.to_vec(),
            FeatureSet::RuntimeOnly => rt.to_vec(),
            FeatureSet::Both => {
                let mut v = kernel.static_features.to_vec();
                v.extend(rt.to_vec());
                v
            }
        };
        self.predict_vec(&features)
    }
}

/// The deployed system: executor + trained predictor. Mirrors the paper's
/// deployment phase — when a (new) program is launched, its static
/// features and freshly collected runtime features are fed to the model,
/// and the launch runs with the predicted partitioning.
#[derive(Debug, Clone)]
pub struct Framework {
    pub executor: Executor,
    pub predictor: PartitionPredictor,
}

/// Everything the deployment phase derives from one probe of a launch:
/// the predicted partitioning plus the pre-computed execution plan
/// (per-chunk transfer sizes, divergence estimate). The serve layer's
/// prediction cache stores these so repeat launches skip probe sampling,
/// model inference and access analysis entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchPlan {
    pub partition: Partition,
    pub exec: ExecPlan,
}

impl Framework {
    /// Check that this predictor can deploy on this executor's machine:
    /// every label-space partition must address exactly the machine's
    /// device count, and the machine must be the one the predictor was
    /// trained on — same registry name *and* same hardware fingerprint.
    /// Run it once at service start-up — a mismatch would otherwise panic
    /// deep inside the executor on the first launch, or silently deploy a
    /// model whose learned boundaries are meaningless on this hardware.
    pub fn validate(&self) -> Result<(), PredictError> {
        let machine = &self.executor.machine;
        let machine_devices = machine.num_devices();
        for p in &self.predictor.label_space {
            if p.num_devices() != machine_devices {
                return Err(PredictError::ArityMismatch {
                    partition_devices: p.num_devices(),
                    machine_devices,
                });
            }
        }
        if self.predictor.label_space.is_empty() {
            return Err(PredictError::EmptyLabelSpace);
        }
        if self.predictor.machine != machine.name {
            return Err(PredictError::MachineMismatch {
                trained_on: self.predictor.machine.clone(),
                deploying_on: machine.name.clone(),
            });
        }
        let deployed = machine.fingerprint();
        if self.predictor.machine_fingerprint != deployed {
            return Err(PredictError::MachineFingerprintMismatch {
                machine: machine.name.clone(),
                trained: self.predictor.machine_fingerprint,
                deployed,
            });
        }
        Ok(())
    }

    /// Predict the partitioning for a launch without executing it.
    pub fn plan(
        &self,
        kernel: &CompiledKernel,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &[BufferData],
    ) -> Result<Partition, DeployError> {
        let rt = runtime_features(kernel, nd, args, bufs, self.executor.sample_items)?;
        Ok(self.predictor.predict(kernel, &rt)?)
    }

    /// The full planning phase of one launch: probe runtime features,
    /// predict the partitioning, and pre-compute the execution plan.
    /// This is the expensive, cacheable half of [`Framework::run_auto`];
    /// [`Framework::execute_planned`] is the cheap, repeatable half.
    pub fn prepare(
        &self,
        kernel: &CompiledKernel,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &[BufferData],
    ) -> Result<LaunchPlan, DeployError> {
        let rt = runtime_features(kernel, nd, args, bufs, self.executor.sample_items)?;
        let partition = self.predictor.predict(kernel, &rt)?;
        let launch = Launch::new(kernel, nd.clone(), args.to_vec());
        let exec = self
            .executor
            .plan_execution(&launch, bufs, &partition, rt.divergence);
        Ok(LaunchPlan { partition, exec })
    }

    /// Execute a launch under a pre-computed [`LaunchPlan`]: only the
    /// kernel work runs — no probe, no inference, no access analysis.
    /// Outputs are bit-identical to [`Framework::run_auto`] with the same
    /// predicted partition. Injected device faults surface as
    /// [`DeployError::Fault`].
    pub fn execute_planned(
        &self,
        kernel: &CompiledKernel,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &mut [BufferData],
        plan: &LaunchPlan,
    ) -> Result<ExecutionReport, DeployError> {
        let launch = Launch::new(kernel, nd.clone(), args.to_vec());
        Ok(self.executor.run_planned(&launch, bufs, &plan.exec)?)
    }

    /// Re-derive a degraded [`LaunchPlan`] that avoids the given devices,
    /// redistributing their share of the base plan's partition
    /// proportionally across the survivors (CPU-only as the last resort).
    /// Returns `None` when every device is avoided — there is nowhere
    /// left to run. The divergence estimate of the base plan is reused so
    /// no fresh probe is needed on the degraded path.
    pub fn replan_excluding(
        &self,
        kernel: &CompiledKernel,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &[BufferData],
        base: &LaunchPlan,
        avoid: &[usize],
    ) -> Option<LaunchPlan> {
        let partition = base.partition.excluding(avoid)?;
        if partition == base.partition {
            return Some(base.clone());
        }
        let launch = Launch::new(kernel, nd.clone(), args.to_vec());
        let exec = self
            .executor
            .plan_execution(&launch, bufs, &partition, base.exec.divergence);
        Some(LaunchPlan { partition, exec })
    }

    /// Plan and execute: returns the chosen partitioning and the full
    /// execution report; output buffers receive the kernel results.
    pub fn run_auto(
        &self,
        kernel: &CompiledKernel,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &mut [BufferData],
    ) -> Result<(Partition, ExecutionReport), DeployError> {
        let partition = self.plan(kernel, nd, args, bufs)?;
        let launch = Launch::new(kernel, nd.clone(), args.to_vec());
        let report = self.executor.run(&launch, bufs, &partition)?;
        Ok((partition, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HarnessConfig;
    use crate::train::collect_training_db;
    use hetpart_ml::TreeConfig;
    use hetpart_oclsim::machines;

    fn small_db() -> TrainingDb {
        let benches: Vec<_> = hetpart_suite::all()
            .into_iter()
            .filter(|b| ["vec_add", "nbody", "blackscholes", "sgemm"].contains(&b.name))
            .collect();
        let cfg = HarnessConfig {
            sizes_per_benchmark: 2,
            sample_items: 32,
            step_tenths: 5,
            ..HarnessConfig::quick()
        };
        collect_training_db(&machines::mc2(), &benches, &cfg).expect("training succeeds")
    }

    #[test]
    fn trains_and_predicts_valid_partitions() {
        let db = small_db();
        let p = PartitionPredictor::train(
            &db,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::Both,
        );
        for r in &db.records {
            let pred = p.predict_vec(&r.features(FeatureSet::Both)).unwrap();
            assert_eq!(pred.num_devices(), 3);
            assert!(p.label_space.contains(&pred));
        }
    }

    #[test]
    fn training_set_predictions_recover_oracle_labels() {
        // A tree evaluated on its own training set should match the oracle
        // labels nearly always — this checks the label plumbing, not
        // generalization.
        let db = small_db();
        let p = PartitionPredictor::train(
            &db,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::Both,
        );
        let hits = db
            .records
            .iter()
            .filter(|r| p.predict_vec(&r.features(FeatureSet::Both)).unwrap() == r.best().partition)
            .count();
        assert!(
            hits * 10 >= db.records.len() * 8,
            "tree should fit its training set: {hits}/{}",
            db.records.len()
        );
    }

    #[test]
    fn framework_runs_auto_and_produces_correct_outputs() {
        let db = small_db();
        let predictor = PartitionPredictor::train(
            &db,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::Both,
        );
        let fw = Framework {
            executor: Executor::new(machines::mc2()),
            predictor,
        };
        // Deploy on a program the model has seen and one it has not.
        for name in ["vec_add", "triad"] {
            let bench = hetpart_suite::by_name(name).unwrap();
            let kernel = bench.compile();
            let inst = bench.instance(bench.smallest_size());
            let mut bufs = inst.bufs.clone();
            let (partition, report) = fw
                .run_auto(&kernel, &inst.nd, &inst.args, &mut bufs)
                .unwrap();
            assert_eq!(partition.num_devices(), 3);
            assert!(report.time > 0.0);
            bench
                .check_outputs(&inst, &bufs)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn predictor_serde_roundtrip() {
        let db = small_db();
        let p = PartitionPredictor::train(&db, &ModelConfig::Knn { k: 3 }, FeatureSet::RuntimeOnly);
        let js = serde_json::to_string(&p).unwrap();
        let back: PartitionPredictor = serde_json::from_str(&js).unwrap();
        let f = db.records[0].features(FeatureSet::RuntimeOnly);
        assert_eq!(p.predict_vec(&f).unwrap(), back.predict_vec(&f).unwrap());
    }

    #[test]
    fn mismatched_feature_set_is_a_named_error_not_a_wrong_partition() {
        // Regression: a predictor trained on runtime features used to
        // accept a static+runtime vector and silently return whatever the
        // model made of the misaligned columns.
        let db = small_db();
        let p = PartitionPredictor::train(
            &db,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::RuntimeOnly,
        );
        let wrong = db.records[0].features(FeatureSet::Both);
        let got = wrong.len();
        assert_eq!(
            p.predict_vec(&wrong),
            Err(PredictError::FeatureDimMismatch {
                expected: p.feature_dim,
                got,
            })
        );
        // The matching set still predicts.
        let right = db.records[0].features(FeatureSet::RuntimeOnly);
        assert!(p.predict_vec(&right).is_ok());
    }

    #[test]
    fn construction_rejects_class_count_mismatch_and_empty_labels() {
        let db = small_db();
        let p = PartitionPredictor::train(
            &db,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::Both,
        );
        // The pipeline was fitted for the full label space; a truncated
        // label space must be rejected, not clamped into at predict time.
        let truncated: Vec<Partition> = p.label_space[..1].to_vec();
        let err = PartitionPredictor::new(
            p.machine.clone(),
            p.machine_fingerprint,
            truncated,
            p.pipeline.clone(),
            FeatureSet::Both,
            p.feature_dim,
        )
        .unwrap_err();
        assert!(
            matches!(err, PredictError::ClassCountMismatch { .. }),
            "{err}"
        );
        assert_eq!(
            PartitionPredictor::new(
                p.machine.clone(),
                p.machine_fingerprint,
                vec![],
                p.pipeline.clone(),
                FeatureSet::Both,
                p.feature_dim
            )
            .unwrap_err(),
            PredictError::EmptyLabelSpace
        );
    }

    #[test]
    fn framework_validate_catches_machine_arity_mismatch() {
        let db = small_db();
        let predictor = PartitionPredictor::train(
            &db,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::Both,
        );
        // mc2 has 3 devices, matching the training machine.
        let ok = Framework {
            executor: Executor::new(machines::mc2()),
            predictor: predictor.clone(),
        };
        assert!(ok.validate().is_ok());
        // A 2-device machine cannot deploy a 3-device label space.
        let two = hetpart_oclsim::Machine::new("two", machines::mc2().devices[..2].to_vec(), 5.0);
        let bad = Framework {
            executor: Executor::new(two),
            predictor,
        };
        assert!(matches!(
            bad.validate().unwrap_err(),
            PredictError::ArityMismatch { .. }
        ));
    }

    #[test]
    fn framework_validate_catches_foreign_and_drifted_machines() {
        let db = small_db(); // trained on mc2
        let predictor = PartitionPredictor::train(
            &db,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::Both,
        );
        // Same arity (3 devices), different machine: mc1.
        let foreign = Framework {
            executor: Executor::new(machines::mc1()),
            predictor: predictor.clone(),
        };
        let err = foreign.validate().unwrap_err();
        assert!(matches!(err, PredictError::MachineMismatch { .. }), "{err}");
        assert!(err.to_string().contains("mc1"), "{err}");
        assert!(err.to_string().contains("mc2"), "{err}");
        // Same name, drifted hardware: tweak one device's clock.
        let mut drifted_machine = machines::mc2();
        drifted_machine.devices[0].clock_ghz *= 1.5;
        let mut drifted_predictor = predictor;
        drifted_predictor.machine_fingerprint = machines::mc2().fingerprint();
        let drifted = Framework {
            executor: Executor::new(drifted_machine),
            predictor: drifted_predictor,
        };
        let err = drifted.validate().unwrap_err();
        assert!(
            matches!(err, PredictError::MachineFingerprintMismatch { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("device profiles changed"), "{err}");
    }
}
