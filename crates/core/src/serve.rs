//! The concurrent deployment service: enqueue launches, plan them once,
//! execute them with cached plans.
//!
//! The paper's deployment phase collects a launched program's runtime
//! features, feeds them to the trained model and runs the launch with the
//! predicted partitioning. [`Framework::run_auto`] does exactly that —
//! synchronously, re-probing the kernel on *every* launch. For serving
//! repeat traffic that is wasted work: the same (kernel, launch shape)
//! pair produces the same features, the same prediction and the same
//! transfer plan every time.
//!
//! [`Service`] wraps a [`Framework`] behind a submission API:
//!
//! * **Queue + worker pool** — [`Service::submit`] enqueues a launch and
//!   returns a [`Ticket`]; a pool of worker threads drains the queue.
//!   With more than one worker, feature collection for queued launches
//!   overlaps with execution of running ones.
//! * **Prediction cache** — plans are memoized under a [`PlanKey`]
//!   (kernel fingerprint + launch shape). A cache hit skips probe
//!   sampling, model inference *and* access analysis: the launch goes
//!   straight to [`Framework::execute_planned`], which runs only the
//!   kernel work itself. The cache is **lock-striped**
//!   ([`StripedCache`]): entries shard across
//!   [`ServiceConfig::cache_stripes`] independent mutexes by key hash,
//!   so a worker pool serving mixed traffic stops serializing on one
//!   cache mutex (`cache_stripes: 1` restores the single-mutex layout).
//! * **Stats** — hits, misses, completions, errors and cumulative
//!   plan/execute latency, via [`Service::stats`].
//!
//! Cache-key semantics: the key captures the kernel identity
//! ([`CompiledKernel::fingerprint`]), the NDRange, and every argument's
//! shape (scalar *values*, buffer *lengths and element types* — not
//! buffer contents). Two launches with the same key reuse one plan; for
//! kernels whose control flow depends on buffer contents the cached
//! partition is the one planned for the first-seen contents, which is the
//! deliberate trade of plan caching (set `cache_capacity: 0` to disable).
//! Execution itself always runs on the submitted buffers, so outputs are
//! exact either way. Workers racing on the *same cold key* may each plan
//! it once (the cache is populated after planning, not reserved before);
//! plans are deterministic, so the duplicates cost wasted probe work,
//! never wrong answers — single-flight dedup is future work.
//!
//! A second, opt-in tier memoizes whole results: with
//! `result_cache_capacity > 0`, a launch whose plan key *and* buffer
//! contents (64-bit content hash) match a previous launch returns that
//! launch's outputs without executing at all. The VM is deterministic, so
//! the memoized outputs are bit-identical to re-execution; the trade is
//! memory (cached output buffers) and the vanishing probability of a
//! 64-bit hash collision, which is why the tier is off by default.
//!
//! # Fault tolerance & overload
//!
//! The service is built to stay up when devices or jobs misbehave:
//!
//! * **Bounded queue + admission control** — the queue holds at most
//!   [`ServiceConfig::max_queue_depth`] jobs. A submission against a full
//!   queue is *shed* with [`DeployError::Overloaded`] (the default
//!   [`AdmissionPolicy::Shed`]) or blocks until space frees or an
//!   admission deadline passes ([`AdmissionPolicy::Block`]).
//! * **Fault injection** — an optional [`FaultPlan`]
//!   ([`ServiceConfig::fault_plan`]) arms deterministic, seeded device
//!   faults in the executor: transient execution failures, permanent
//!   device death, slowdowns. Setting the environment variable
//!   `SERVE_FAULTS=0` disarms any configured plan.
//! * **Retry, re-plan, circuit breakers** — transient faults retry with
//!   capped exponential backoff; a permanently dead (or persistently
//!   faulting) device is excluded and the launch re-planned on the
//!   survivors via proportional redistribution, CPU-only as the last
//!   resort. A per-device circuit breaker opens after
//!   [`ServiceConfig::breaker_threshold`] consecutive failures, routes
//!   planning around the device for
//!   [`ServiceConfig::breaker_cooldown`], then admits one half-open
//!   probe.
//! * **Panic isolation** — a job that panics resolves its ticket with
//!   [`DeployError::Worker`] instead of poisoning locks or hanging
//!   waiters; the worker survives and keeps serving. Every serve-path
//!   lock recovers from poisoning.
//! * **Shutdown** — [`Service::shutdown`] drains forever;
//!   [`Service::shutdown_drain`] drains up to a deadline then sheds the
//!   remainder; [`Service::shutdown_now`] sheds everything still queued.
//!   Shed jobs resolve their tickets with [`DeployError::Shed`].

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hetpart_inspire::ir::NdRange;
use hetpart_inspire::vm::{ArgValue, BufferData};
use hetpart_inspire::{CompiledKernel, ScalarType};
use hetpart_oclsim::{FaultPlan, FaultState};
use hetpart_runtime::{ExecutionReport, Partition};

use crate::predictor::{DeployError, Framework, LaunchPlan};

/// Lock a mutex, recovering the guard if a previous holder panicked.
/// Serve-path state (queue, tickets, caches, breakers) stays consistent
/// under panics by construction — every critical section either completes
/// its invariant or leaves plain data a later holder can still use — so
/// poisoning must not cascade one panicked job into a wedged service.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `Condvar::wait` with the same poison recovery as [`lock_recover`].
fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `Condvar::wait_timeout` with poison recovery.
fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, dur) {
        Ok((g, _)) => g,
        Err(p) => p.into_inner().0,
    }
}

/// Whether configured fault plans are armed: the `SERVE_FAULTS=0`
/// environment escape hatch disables injection without touching code.
fn faults_enabled() -> bool {
    std::env::var_os("SERVE_FAULTS")
        .map(|v| v != "0")
        .unwrap_or(true)
}

/// The shape-identity of one kernel argument inside a [`PlanKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ArgKey {
    Int(i32),
    UInt(u32),
    /// Bit pattern — floats hash by representation.
    Float(u32),
    /// Binding index plus element type and length of the bound buffer.
    /// The index matters: `[Buffer(0), Buffer(1)]` and
    /// `[Buffer(1), Buffer(0)]` bind the same buffers to different
    /// parameters and must not share a plan (or a memoized result).
    Buffer {
        index: usize,
        elem: ScalarType,
        len: usize,
    },
    /// A buffer argument whose index has no backing buffer (the launch
    /// will be rejected by `Vm::check_args`, but the key must still be
    /// well-defined and distinct).
    DanglingBuffer {
        index: usize,
    },
}

/// What makes two launches "the same" to the prediction cache: the kernel
/// fingerprint plus the launch shape (NDRange dimensions, scalar argument
/// values, buffer lengths and element types). Buffer *contents* are
/// deliberately excluded — see the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    fingerprint: u64,
    dims: Vec<usize>,
    args: Vec<ArgKey>,
}

impl PlanKey {
    /// Build the cache key of a launch.
    pub fn of(
        kernel: &CompiledKernel,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &[BufferData],
    ) -> Self {
        let dims = (0..3).map(|d| nd.dim(d)).collect();
        let args = args
            .iter()
            .map(|a| match a {
                ArgValue::Int(v) => ArgKey::Int(*v),
                ArgValue::UInt(v) => ArgKey::UInt(*v),
                ArgValue::Float(v) => ArgKey::Float(v.to_bits()),
                ArgValue::Buffer(b) => match bufs.get(*b) {
                    Some(bd) => ArgKey::Buffer {
                        index: *b,
                        elem: bd.elem_type(),
                        len: bd.len(),
                    },
                    None => ArgKey::DanglingBuffer { index: *b },
                },
            })
            .collect();
        Self {
            fingerprint: kernel.fingerprint,
            dims,
            args,
        }
    }
}

/// 64-bit content hash of a launch's buffers (FxHash-style word folding —
/// fast enough that hashing is orders of magnitude cheaper than kernel
/// execution).
fn content_hash(bufs: &[BufferData]) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |w: u64| h = (h.rotate_left(5) ^ w).wrapping_mul(K);
    for bd in bufs {
        // Type tag then length: two same-bits buffers of different
        // scalar types must not collide.
        fold(match bd {
            BufferData::F32(_) => 1,
            BufferData::I32(_) => 2,
            BufferData::U32(_) => 3,
        });
        fold(bd.len() as u64);
        match bd {
            BufferData::F32(v) => v.iter().for_each(|x| fold(u64::from(x.to_bits()))),
            BufferData::I32(v) => v.iter().for_each(|x| fold(*x as u32 as u64)),
            BufferData::U32(v) => v.iter().for_each(|x| fold(u64::from(*x))),
        }
    }
    h
}

/// Bounded FIFO memo, generic over the cached value (plans and results).
/// One stripe of a [`StripedCache`].
struct FifoCache<K, V> {
    capacity: usize,
    map: HashMap<K, V>,
    order: VecDeque<K>,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> FifoCache<K, V> {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: &K) -> Option<V> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(evict) = self.order.pop_front() {
                    self.map.remove(&evict);
                }
            }
        }
    }
}

/// A bounded FIFO memo sharded across `N` independently locked stripes
/// by key hash — the serving-scale successor to one `Mutex<FifoCache>`.
///
/// With a single mutex every worker of the pool serializes on the cache
/// for each lookup and fill, even when they touch unrelated keys. Keys
/// hash to a fixed stripe, so concurrent operations on different stripes
/// never contend, and operations on the same key keep the same
/// consistency they had under one lock (a stripe *is* one lock).
///
/// The capacity splits evenly across stripes (rounded up), so eviction is
/// per-stripe FIFO: total occupancy never exceeds `capacity + stripes`.
/// `stripes == 1` is exactly the old single-mutex cache.
pub struct StripedCache<K, V> {
    stripes: Vec<Mutex<FifoCache<K, V>>>,
}

impl<K: Hash + Eq + Clone, V: Clone> StripedCache<K, V> {
    /// A cache holding ~`capacity` entries across `stripes` locks
    /// (`stripes` is clamped to at least 1; `capacity == 0` disables
    /// caching entirely).
    pub fn new(capacity: usize, stripes: usize) -> Self {
        let stripes = stripes.max(1);
        let per_stripe = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(stripes)
        };
        Self {
            stripes: (0..stripes)
                .map(|_| Mutex::new(FifoCache::new(per_stripe)))
                .collect(),
        }
    }

    fn stripe(&self, key: &K) -> &Mutex<FifoCache<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.stripes[(h.finish() as usize) % self.stripes.len()]
    }

    /// Clone out the cached value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        lock_recover(self.stripe(key)).get(key)
    }

    /// Memoize `value` under `key` (no-op when the capacity is 0).
    pub fn insert(&self, key: K, value: V) {
        lock_recover(self.stripe(&key)).insert(key, value);
    }
}

/// A memoized launch outcome: everything a repeat of a bit-identical
/// launch needs to answer without executing. Shared via `Arc` so a cache
/// hit clones two words plus the output buffers it hands out.
struct CachedResult {
    partition: Partition,
    report: ExecutionReport,
    bufs: Vec<BufferData>,
}

/// What [`Service::submit`] does when the queue is at
/// [`ServiceConfig::max_queue_depth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Reject immediately with [`DeployError::Overloaded`] (load
    /// shedding — the default; the caller owns retry policy).
    Shed,
    /// Block the submitter until space frees, up to the admission
    /// deadline; past it the submission is shed. `Duration::ZERO`
    /// behaves like [`AdmissionPolicy::Shed`].
    Block { deadline: Duration },
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the queue. Defaults to the machine's
    /// available parallelism (at least 1).
    pub workers: usize,
    /// Maximum cached plans; `0` disables the prediction cache.
    pub cache_capacity: usize,
    /// Maximum memoized whole results (content-keyed tier); `0` — the
    /// default — disables result memoization. See the module docs.
    pub result_cache_capacity: usize,
    /// Lock stripes of the plan and result caches (clamped to at least
    /// 1). `1` restores the single-mutex cache; the default keeps a
    /// worker pool from serializing on one cache lock.
    pub cache_stripes: usize,
    /// Maximum queued (not yet picked up) jobs; `0` means unbounded
    /// (the pre-backpressure layout). In-flight jobs do not count.
    pub max_queue_depth: usize,
    /// What to do with submissions against a full queue.
    pub admission: AdmissionPolicy,
    /// Retries of a transiently faulting launch before the device is
    /// excluded and the launch re-planned.
    pub max_retries: u32,
    /// First retry backoff; doubles per retry up to [`Self::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound on a single retry backoff sleep.
    pub backoff_cap: Duration,
    /// Consecutive per-device failures that open its circuit breaker;
    /// `0` disables breakers.
    pub breaker_threshold: u32,
    /// How long an open breaker routes planning around its device before
    /// admitting a half-open probe.
    pub breaker_cooldown: Duration,
    /// Optional deterministic fault plan, injected into the executor's
    /// planned-execution path (see [`FaultPlan`]). Ignored when the
    /// `SERVE_FAULTS=0` environment variable is set.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            cache_capacity: 1024,
            result_cache_capacity: 0,
            cache_stripes: 16,
            max_queue_depth: 1024,
            admission: AdmissionPolicy::Shed,
            max_retries: 3,
            // Simulated launches run in microseconds-to-milliseconds, so
            // backoff is sized to match: enough to let a glitching device
            // settle, not enough to stall the worker visibly.
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(5),
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_millis(100),
            fault_plan: None,
        }
    }
}

/// The completed result of one served launch.
#[derive(Debug, Clone)]
pub struct ServedLaunch {
    /// The partitioning the launch ran with.
    pub partition: Partition,
    pub report: ExecutionReport,
    /// The submission's buffers, outputs filled in.
    pub bufs: Vec<BufferData>,
    /// Whether the plan came from the prediction cache.
    pub cache_hit: bool,
    /// Whether the whole result came from the content-keyed result memo
    /// (implies `cache_hit`; the launch did not execute).
    pub result_hit: bool,
    /// Seconds spent planning (probe + inference + access analysis);
    /// `0.0` on a cache hit.
    pub plan_seconds: f64,
    /// Seconds from dequeue to completion.
    pub service_seconds: f64,
    /// Seconds spent waiting in the queue (submission to dequeue) — the
    /// admission-delay component of end-to-end latency under load.
    pub queued_seconds: f64,
}

struct TicketState {
    slot: Mutex<Option<Result<ServedLaunch, DeployError>>>,
    done: Condvar,
}

/// A handle to a submitted launch; [`Ticket::wait`] blocks until the
/// worker pool has executed it.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Block until the launch completes and take its result.
    pub fn wait(self) -> Result<ServedLaunch, DeployError> {
        let mut slot = lock_recover(&self.state.slot);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = wait_recover(&self.state.done, slot);
        }
    }

    /// Wait up to `timeout` for the launch to complete. On timeout the
    /// ticket comes back in `Err` so the caller can keep waiting (or
    /// drop it — the job still runs, its result is simply discarded).
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<ServedLaunch, DeployError>, Self> {
        let deadline = Instant::now() + timeout;
        let mut slot = lock_recover(&self.state.slot);
        loop {
            if let Some(result) = slot.take() {
                return Ok(result);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(slot);
                return Err(self);
            }
            slot = wait_timeout_recover(&self.state.done, slot, deadline - now);
        }
    }
}

struct Job {
    kernel: Arc<CompiledKernel>,
    nd: NdRange,
    args: Vec<ArgValue>,
    bufs: Vec<BufferData>,
    ticket: Arc<TicketState>,
    submitted_at: Instant,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    sheds: AtomicU64,
    retries: AtomicU64,
    replans: AtomicU64,
    worker_panics: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    result_hits: AtomicU64,
    plan_ns: AtomicU64,
    exec_ns: AtomicU64,
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    /// Admitted submissions (sheds are counted separately).
    pub submitted: u64,
    pub completed: u64,
    /// Jobs whose ticket resolved with an error (sheds excluded).
    pub errors: u64,
    /// Submissions refused at admission plus queued jobs shed at
    /// shutdown.
    pub sheds: u64,
    /// Transient-fault retry attempts across all launches.
    pub retries: u64,
    /// Degraded re-plans: launches re-partitioned onto surviving devices.
    pub replans: u64,
    /// Jobs that panicked inside a worker (each resolved its ticket with
    /// [`DeployError::Worker`]; the worker kept serving).
    pub worker_panics: u64,
    /// Devices whose circuit breaker is currently open.
    pub open_breakers: u64,
    /// Devices marked permanently dead.
    pub dead_devices: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Launches answered entirely from the result memo (subset of
    /// `cache_hits`).
    pub result_hits: u64,
    /// Cumulative seconds spent in the planning phase (cold launches).
    pub plan_seconds: f64,
    /// Cumulative seconds spent executing kernels.
    pub exec_seconds: f64,
}

impl ServiceStats {
    /// Fraction of planned launches answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Per-device circuit breaker state.
#[derive(Debug, Clone, Copy)]
enum Breaker {
    /// Healthy (or recovering): `failures` consecutive failures so far.
    Closed { failures: u32 },
    /// Tripped: planning routes around the device until `until`.
    Open { until: Instant },
    /// Cooldown elapsed: one probe launch may use the device; its
    /// outcome closes or re-opens the breaker.
    HalfOpen,
}

/// Sticky per-device health: permanent-death flags plus circuit
/// breakers. Fed by launch outcomes, consulted by planning.
struct HealthRegistry {
    breakers: Vec<Mutex<Breaker>>,
    dead: Vec<AtomicBool>,
    threshold: u32,
    cooldown: Duration,
}

impl HealthRegistry {
    fn new(devices: usize, threshold: u32, cooldown: Duration) -> Self {
        Self {
            breakers: (0..devices)
                .map(|_| Mutex::new(Breaker::Closed { failures: 0 }))
                .collect(),
            dead: (0..devices).map(|_| AtomicBool::new(false)).collect(),
            threshold,
            cooldown,
        }
    }

    fn record_success(&self, device: usize) {
        if let Some(b) = self.breakers.get(device) {
            *lock_recover(b) = Breaker::Closed { failures: 0 };
        }
    }

    fn record_failure(&self, device: usize, permanent: bool) {
        if permanent {
            if let Some(d) = self.dead.get(device) {
                d.store(true, Ordering::Relaxed);
            }
        }
        let Some(b) = self.breakers.get(device) else {
            return;
        };
        let mut b = lock_recover(b);
        *b = match *b {
            Breaker::Closed { failures } => {
                let failures = failures.saturating_add(1);
                if self.threshold > 0 && failures >= self.threshold {
                    Breaker::Open {
                        until: Instant::now() + self.cooldown,
                    }
                } else {
                    Breaker::Closed { failures }
                }
            }
            // A failed half-open probe (or a failure racing an open
            // breaker) restarts the full cooldown.
            Breaker::HalfOpen | Breaker::Open { .. } => Breaker::Open {
                until: Instant::now() + self.cooldown,
            },
        };
    }

    /// Devices planning should currently route around: dead devices plus
    /// open breakers. An expired breaker transitions to half-open here
    /// and is *not* avoided — the calling launch is its probe.
    fn avoided(&self) -> Vec<usize> {
        let mut avoid = Vec::new();
        for (i, b) in self.breakers.iter().enumerate() {
            if self.dead[i].load(Ordering::Relaxed) {
                avoid.push(i);
                continue;
            }
            let mut b = lock_recover(b);
            if let Breaker::Open { until } = *b {
                if Instant::now() >= until {
                    *b = Breaker::HalfOpen;
                } else {
                    avoid.push(i);
                }
            }
        }
        avoid
    }

    fn open_breakers(&self) -> u64 {
        self.breakers
            .iter()
            .filter(|b| matches!(*lock_recover(b), Breaker::Open { .. }))
            .count() as u64
    }

    fn dead_devices(&self) -> u64 {
        self.dead
            .iter()
            .filter(|d| d.load(Ordering::Relaxed))
            .count() as u64
    }
}

struct Shared {
    framework: Framework,
    queue: Mutex<QueueState>,
    /// Signals workers: a job is available (or shutdown began).
    available: Condvar,
    /// Signals blocked submitters: queue space freed (or shutdown).
    space: Condvar,
    max_queue_depth: usize,
    admission: AdmissionPolicy,
    max_retries: u32,
    backoff_base: Duration,
    backoff_cap: Duration,
    /// Armed fault-injection state, if any; also the signal that buffers
    /// need a pristine copy for retry restoration.
    faults: Option<Arc<FaultState>>,
    health: HealthRegistry,
    plans: StripedCache<PlanKey, LaunchPlan>,
    /// Whether the result memo is enabled (fixed at construction; read
    /// without touching the `results` stripes).
    memoize_results: bool,
    results: StripedCache<(PlanKey, u64), Arc<CachedResult>>,
    stats: Stats,
}

/// The concurrent deployment service. See the module docs.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Start a service over a framework, validating up front that the
    /// predictor's label space fits the executor's machine and that any
    /// configured fault plan fits the machine.
    pub fn new(mut framework: Framework, config: ServiceConfig) -> Result<Self, DeployError> {
        framework.validate()?;
        let devices = framework.executor.machine.num_devices();
        let faults = match &config.fault_plan {
            Some(plan) if faults_enabled() && !plan.is_noop() => {
                let state = framework
                    .executor
                    .machine
                    .fault_state(plan)
                    .map_err(DeployError::Config)?;
                let state = Arc::new(state);
                framework.executor.faults = Some(Arc::clone(&state));
                Some(state)
            }
            _ => None,
        };
        let shared = Arc::new(Shared {
            framework,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            space: Condvar::new(),
            max_queue_depth: config.max_queue_depth,
            admission: config.admission,
            max_retries: config.max_retries,
            backoff_base: config.backoff_base,
            backoff_cap: config.backoff_cap,
            faults,
            health: HealthRegistry::new(devices, config.breaker_threshold, config.breaker_cooldown),
            plans: StripedCache::new(config.cache_capacity, config.cache_stripes),
            memoize_results: config.result_cache_capacity > 0,
            results: StripedCache::new(config.result_cache_capacity, config.cache_stripes),
            stats: Stats::default(),
        });
        let mut service = Self {
            shared,
            workers: Vec::with_capacity(config.workers.max(1)),
        };
        for i in 0..config.workers.max(1) {
            let shared = Arc::clone(&service.shared);
            let handle = std::thread::Builder::new()
                .name(format!("hetpart-serve-{i}"))
                .spawn(move || worker_main(&shared))
                .map_err(|e| {
                    // Dropping `service` here joins the workers already
                    // spawned, so a partial start cleans up after itself.
                    DeployError::Config(format!("failed to spawn service worker {i}: {e}"))
                })?;
            service.workers.push(handle);
        }
        Ok(service)
    }

    /// Enqueue a launch. The returned [`Ticket`] resolves once a worker
    /// has planned (or cache-hit) and executed it; `bufs` travel with the
    /// job and come back in the [`ServedLaunch`] with outputs filled in.
    ///
    /// Against a full queue this sheds ([`DeployError::Overloaded`]) or
    /// blocks up to the admission deadline, per
    /// [`ServiceConfig::admission`]; after shutdown began it returns
    /// [`DeployError::Shed`].
    pub fn submit(
        &self,
        kernel: Arc<CompiledKernel>,
        nd: NdRange,
        args: Vec<ArgValue>,
        bufs: Vec<BufferData>,
    ) -> Result<Ticket, DeployError> {
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        let job = Job {
            kernel,
            nd,
            args,
            bufs,
            ticket: Arc::clone(&state),
            submitted_at: Instant::now(),
        };
        let mut q = lock_recover(&self.shared.queue);
        if q.shutdown {
            return Err(DeployError::Shed);
        }
        if self.shared.max_queue_depth > 0 && q.jobs.len() >= self.shared.max_queue_depth {
            match self.shared.admission {
                AdmissionPolicy::Shed => {
                    let depth = q.jobs.len();
                    drop(q);
                    self.shared.stats.sheds.fetch_add(1, Ordering::Relaxed);
                    return Err(DeployError::Overloaded { depth });
                }
                AdmissionPolicy::Block { deadline } => {
                    let deadline_at = Instant::now() + deadline;
                    loop {
                        if q.shutdown {
                            return Err(DeployError::Shed);
                        }
                        if q.jobs.len() < self.shared.max_queue_depth {
                            break;
                        }
                        let now = Instant::now();
                        if now >= deadline_at {
                            let depth = q.jobs.len();
                            drop(q);
                            self.shared.stats.sheds.fetch_add(1, Ordering::Relaxed);
                            return Err(DeployError::Overloaded { depth });
                        }
                        q = wait_timeout_recover(&self.shared.space, q, deadline_at - now);
                    }
                }
            }
        }
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        q.jobs.push_back(job);
        drop(q);
        self.shared.available.notify_one();
        Ok(Ticket { state })
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.shared.stats;
        ServiceStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            errors: s.errors.load(Ordering::Relaxed),
            sheds: s.sheds.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
            replans: s.replans.load(Ordering::Relaxed),
            worker_panics: s.worker_panics.load(Ordering::Relaxed),
            open_breakers: self.shared.health.open_breakers(),
            dead_devices: self.shared.health.dead_devices(),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            result_hits: s.result_hits.load(Ordering::Relaxed),
            plan_seconds: s.plan_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            exec_seconds: s.exec_ns.load(Ordering::Relaxed) as f64 * 1e-9,
        }
    }

    /// The framework this service deploys.
    pub fn framework(&self) -> &Framework {
        &self.shared.framework
    }

    /// The armed fault-injection state, if a fault plan was configured
    /// (and not disabled via `SERVE_FAULTS=0`).
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.shared.faults.as_deref()
    }

    /// Stop accepting work, drain the queue fully, and join the workers.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Stop accepting work and drain the queue for up to `deadline`;
    /// jobs still queued past it are shed (tickets resolve with
    /// [`DeployError::Shed`]). Returns how many jobs were shed.
    /// In-flight jobs always run to completion.
    pub fn shutdown_drain(mut self, deadline: Duration) -> usize {
        let deadline_at = Instant::now() + deadline;
        {
            let mut q = lock_recover(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        self.shared.space.notify_all();
        let shed = loop {
            let mut q = lock_recover(&self.shared.queue);
            if q.jobs.is_empty() {
                break 0;
            }
            if Instant::now() >= deadline_at {
                break shed_queued(&self.shared, &mut q);
            }
            drop(q);
            std::thread::sleep(Duration::from_micros(200));
        };
        self.join_workers();
        shed
    }

    /// Stop accepting work and shed everything still queued (tickets
    /// resolve with [`DeployError::Shed`]); in-flight jobs run to
    /// completion. Returns how many jobs were shed.
    pub fn shutdown_now(mut self) -> usize {
        let shed = {
            let mut q = lock_recover(&self.shared.queue);
            q.shutdown = true;
            shed_queued(&self.shared, &mut q)
        };
        self.shared.available.notify_all();
        self.shared.space.notify_all();
        self.join_workers();
        shed
    }

    fn stop_and_join(&mut self) {
        {
            let mut q = lock_recover(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        self.shared.space.notify_all();
        self.join_workers();
    }

    fn join_workers(&mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Pop and shed every queued job, resolving its ticket with
/// [`DeployError::Shed`]. Returns the count.
fn shed_queued(shared: &Shared, q: &mut QueueState) -> usize {
    let mut shed = 0;
    while let Some(job) = q.jobs.pop_front() {
        shared.stats.sheds.fetch_add(1, Ordering::Relaxed);
        let mut slot = lock_recover(&job.ticket.slot);
        *slot = Some(Err(DeployError::Shed));
        drop(slot);
        job.ticket.done.notify_all();
        shed += 1;
    }
    shed
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Worker thread entry point: run the queue loop, respawning it in place
/// if it ever panics outside the per-job `catch_unwind` (so a bug in
/// queue handling shrinks to a recorded incident, not a silently smaller
/// pool).
fn worker_main(shared: &Arc<Shared>) {
    loop {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker_loop(shared))) {
            Ok(()) => return,
            Err(_) => {
                shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock_recover(&shared.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = wait_recover(&shared.available, q);
            }
        };
        // The pop freed one queue slot; wake a blocked submitter.
        shared.space.notify_one();
        let queued_seconds = job.submitted_at.elapsed().as_secs_f64();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process(
                shared,
                job.kernel,
                job.nd,
                job.args,
                job.bufs,
                queued_seconds,
            )
        }))
        .unwrap_or_else(|payload| {
            shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            Err(DeployError::Worker(msg))
        });
        if result.is_err() {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        }
        let mut slot = lock_recover(&job.ticket.slot);
        *slot = Some(result);
        drop(slot);
        job.ticket.done.notify_all();
    }
}

fn process(
    shared: &Shared,
    kernel: Arc<CompiledKernel>,
    nd: NdRange,
    args: Vec<ArgValue>,
    mut bufs: Vec<BufferData>,
    queued_seconds: f64,
) -> Result<ServedLaunch, DeployError> {
    let started = Instant::now();
    let fw = &shared.framework;
    let key = PlanKey::of(&kernel, &nd, &args, &bufs);

    // Tier 2 (opt-in): a bit-identical launch replays its memoized result
    // without executing.
    let result_key = shared
        .memoize_results
        .then(|| (key.clone(), content_hash(&bufs)));
    if let Some(rk) = &result_key {
        if let Some(cached) = shared.results.get(rk) {
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.stats.result_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(ServedLaunch {
                partition: cached.partition.clone(),
                report: cached.report.clone(),
                bufs: cached.bufs.clone(),
                cache_hit: true,
                result_hit: true,
                plan_seconds: 0.0,
                service_seconds: started.elapsed().as_secs_f64(),
                queued_seconds,
            });
        }
    }

    // Tier 1: reuse the plan for this launch shape, or build and memoize
    // one.
    let cached = shared.plans.get(&key);
    let (plan, cache_hit, plan_seconds) = match cached {
        Some(plan) => {
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            (plan, true, 0.0)
        }
        None => {
            let t = Instant::now();
            let plan = fw.prepare(&kernel, &nd, &args, &bufs)?;
            let plan_seconds = t.elapsed().as_secs_f64();
            shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .plan_ns
                .fetch_add((plan_seconds * 1e9) as u64, Ordering::Relaxed);
            shared.plans.insert(key.clone(), plan.clone());
            (plan, false, plan_seconds)
        }
    };

    // Degraded pre-planning: route around devices already known bad
    // (dead, or breaker open). If *every* device is currently avoided,
    // fall back to the base plan — breakers are advisory, and trying
    // beats refusing outright.
    let mut avoid = shared.health.avoided();
    let mut active = plan.clone();
    if !avoid.is_empty() {
        if let Some(degraded) = fw.replan_excluding(&kernel, &nd, &args, &bufs, &plan, &avoid) {
            if degraded.partition != active.partition {
                shared.stats.replans.fetch_add(1, Ordering::Relaxed);
            }
            active = degraded;
        }
    }

    // Execute with retry (transients), backoff, and degraded re-planning
    // (dead or persistently faulting devices). A pristine copy of the
    // buffers — kept only when fault injection is armed — restores
    // read-modify-write inputs before each retry, so a partially
    // executed attempt can never corrupt the final outputs.
    let pristine = shared.faults.as_ref().map(|_| bufs.clone());
    let mut transient_tries = 0u32;
    let report = loop {
        let t = Instant::now();
        let attempt = fw.execute_planned(&kernel, &nd, &args, &mut bufs, &active);
        shared
            .stats
            .exec_ns
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match attempt {
            Ok(report) => {
                for dev in active.partition.active_devices() {
                    shared.health.record_success(dev);
                }
                break report;
            }
            Err(DeployError::Fault {
                device,
                device_name,
                permanent,
            }) => {
                shared.health.record_failure(device, permanent);
                if let Some(p) = &pristine {
                    bufs.clone_from(p);
                }
                if permanent || transient_tries >= shared.max_retries {
                    // Exclude the device (for exhausted transients it is
                    // treated as suspect) and re-plan on the survivors.
                    if !avoid.contains(&device) {
                        avoid.push(device);
                    }
                    match fw.replan_excluding(&kernel, &nd, &args, &bufs, &plan, &avoid) {
                        Some(degraded) if degraded.partition != active.partition => {
                            shared.stats.replans.fetch_add(1, Ordering::Relaxed);
                            active = degraded;
                            transient_tries = 0;
                        }
                        // No survivors (or no change, which would loop
                        // forever): surface the fault.
                        _ => {
                            return Err(DeployError::Fault {
                                device,
                                device_name,
                                permanent,
                            })
                        }
                    }
                } else {
                    transient_tries += 1;
                    shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                    let exp = transient_tries.saturating_sub(1).min(10);
                    let backoff = shared
                        .backoff_base
                        .saturating_mul(1u32 << exp)
                        .min(shared.backoff_cap);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
            Err(e) => return Err(e),
        }
    };

    if let Some(rk) = result_key {
        // Degraded execution is still bit-exact (the partition only moves
        // work between devices; the VM is deterministic per item), so the
        // memo stays valid across fault episodes.
        let cached = Arc::new(CachedResult {
            partition: active.partition.clone(),
            report: report.clone(),
            bufs: bufs.clone(),
        });
        shared.results.insert(rk, cached);
    }

    Ok(ServedLaunch {
        partition: active.partition,
        report,
        bufs,
        cache_hit,
        result_hit: false,
        plan_seconds,
        service_seconds: started.elapsed().as_secs_f64(),
        queued_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HarnessConfig;
    use crate::db::FeatureSet;
    use crate::predictor::PartitionPredictor;
    use crate::train::collect_training_db;
    use hetpart_ml::{ModelConfig, TreeConfig};
    use hetpart_oclsim::machines;
    use hetpart_runtime::Executor;

    fn small_framework() -> Framework {
        let benches: Vec<_> = hetpart_suite::all()
            .into_iter()
            .filter(|b| ["vec_add", "blackscholes", "sgemm"].contains(&b.name))
            .collect();
        let cfg = HarnessConfig {
            sizes_per_benchmark: 2,
            sample_items: 32,
            step_tenths: 5,
            ..HarnessConfig::quick()
        };
        let db = collect_training_db(&machines::mc2(), &benches, &cfg).expect("training succeeds");
        let predictor = PartitionPredictor::train(
            &db,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::Both,
        );
        Framework {
            executor: Executor::new(machines::mc2()),
            predictor,
        }
    }

    #[test]
    fn served_launch_matches_run_auto_and_caches() {
        let fw = small_framework();
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());

        let mut serial_bufs = inst.bufs.clone();
        let (serial_partition, _) = fw
            .run_auto(&kernel, &inst.nd, &inst.args, &mut serial_bufs)
            .unwrap();

        let service = Service::new(fw, ServiceConfig::default()).unwrap();
        let cold = service
            .submit(
                Arc::clone(&kernel),
                inst.nd.clone(),
                inst.args.clone(),
                inst.bufs.clone(),
            )
            .expect("admitted")
            .wait()
            .unwrap();
        assert!(!cold.cache_hit);
        assert_eq!(cold.partition, serial_partition);
        assert_eq!(cold.bufs, serial_bufs);

        let warm = service
            .submit(
                kernel,
                inst.nd.clone(),
                inst.args.clone(),
                inst.bufs.clone(),
            )
            .expect("admitted")
            .wait()
            .unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.partition, serial_partition);
        assert_eq!(warm.bufs, serial_bufs);

        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.errors, 0);
        service.shutdown();
    }

    #[test]
    fn result_memo_replays_identical_launches_exactly() {
        let fw = small_framework();
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());
        let service = Service::new(
            fw,
            ServiceConfig {
                result_cache_capacity: 64,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let submit = |bufs: Vec<hetpart_inspire::vm::BufferData>| {
            service
                .submit(
                    Arc::clone(&kernel),
                    inst.nd.clone(),
                    inst.args.clone(),
                    bufs,
                )
                .expect("admitted")
                .wait()
                .unwrap()
        };
        let cold = submit(inst.bufs.clone());
        assert!(!cold.result_hit);
        let warm = submit(inst.bufs.clone());
        assert!(warm.result_hit && warm.cache_hit);
        assert_eq!(warm.bufs, cold.bufs);
        assert_eq!(warm.partition, cold.partition);
        assert_eq!(warm.report, cold.report);

        // Different contents (same shape) must execute, not replay.
        let mut other = inst.bufs.clone();
        match &mut other[0] {
            hetpart_inspire::vm::BufferData::F32(v) => v[0] += 1.0,
            _ => panic!("vec_add input 0 is f32"),
        }
        let different = submit(other);
        assert!(!different.result_hit, "contents changed: memo must miss");
        assert!(different.cache_hit, "plan tier still hits on same shape");
        assert_ne!(different.bufs, cold.bufs);
        assert_eq!(service.stats().result_hits, 1);
        service.shutdown();
    }

    #[test]
    fn plan_key_separates_kernels_sizes_and_scalars() {
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let kernel = bench.compile();
        let a = bench.instance(bench.smallest_size());
        let key_a = PlanKey::of(&kernel, &a.nd, &a.args, &a.bufs);
        assert_eq!(key_a, PlanKey::of(&kernel, &a.nd, &a.args, &a.bufs));

        let b = bench.instance(bench.sizes[1]);
        assert_ne!(key_a, PlanKey::of(&kernel, &b.nd, &b.args, &b.bufs));

        let other = hetpart_suite::by_name("triad").unwrap().compile();
        assert_ne!(key_a, PlanKey::of(&other, &a.nd, &a.args, &a.bufs));
    }

    #[test]
    fn plan_key_distinguishes_buffer_bindings() {
        // [Buffer(0), Buffer(1)] vs [Buffer(1), Buffer(0)]: same shapes,
        // opposite data flow — must not share a plan or memoized result.
        use hetpart_inspire::vm::{ArgValue, BufferData};
        let kernel = hetpart_inspire::compile(
            "kernel void copy(global const float* src, global float* dst) {
                int i = get_global_id(0);
                dst[i] = src[i];
            }",
        )
        .unwrap();
        let nd = hetpart_inspire::NdRange::d1(16);
        let bufs = vec![
            BufferData::F32(vec![1.0; 16]),
            BufferData::F32(vec![2.0; 16]),
        ];
        let fwd = [ArgValue::Buffer(0), ArgValue::Buffer(1)];
        let rev = [ArgValue::Buffer(1), ArgValue::Buffer(0)];
        assert_ne!(
            PlanKey::of(&kernel, &nd, &fwd, &bufs),
            PlanKey::of(&kernel, &nd, &rev, &bufs)
        );
        let aliased = [ArgValue::Buffer(0), ArgValue::Buffer(0)];
        assert_ne!(
            PlanKey::of(&kernel, &nd, &fwd, &bufs),
            PlanKey::of(&kernel, &nd, &aliased, &bufs)
        );
    }

    #[test]
    fn disabled_cache_never_hits() {
        let fw = small_framework();
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());
        let service = Service::new(
            fw,
            ServiceConfig {
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        for _ in 0..3 {
            let r = service
                .submit(
                    Arc::clone(&kernel),
                    inst.nd.clone(),
                    inst.args.clone(),
                    inst.bufs.clone(),
                )
                .expect("admitted")
                .wait()
                .unwrap();
            assert!(!r.cache_hit);
        }
        assert_eq!(service.stats().cache_misses, 3);
        service.shutdown();
    }

    #[test]
    fn striped_cache_agrees_with_single_stripe_and_bounds_occupancy() {
        // Same key set, any stripe count: identical visible contents.
        let single: StripedCache<u64, u64> = StripedCache::new(1024, 1);
        let striped: StripedCache<u64, u64> = StripedCache::new(1024, 16);
        for k in 0..512u64 {
            single.insert(k, k * 3);
            striped.insert(k, k * 3);
        }
        for k in 0..512u64 {
            assert_eq!(single.get(&k), Some(k * 3));
            assert_eq!(striped.get(&k), single.get(&k));
        }
        assert_eq!(striped.get(&9999), None);

        // Per-stripe FIFO keeps total occupancy near the capacity even
        // under heavy churn.
        let tiny: StripedCache<u64, u64> = StripedCache::new(32, 8);
        for k in 0..10_000u64 {
            tiny.insert(k, k);
        }
        let live = (0..10_000u64).filter(|k| tiny.get(k).is_some()).count();
        assert!(
            live <= 32 + 8,
            "occupancy {live} exceeds capacity + stripes"
        );

        // Capacity 0 disables caching regardless of stripe count.
        let off: StripedCache<u64, u64> = StripedCache::new(0, 16);
        off.insert(1, 1);
        assert_eq!(off.get(&1), None);
    }

    #[test]
    fn striped_cache_is_safe_under_concurrent_mixed_traffic() {
        let cache: Arc<StripedCache<u64, u64>> = Arc::new(StripedCache::new(256, 16));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let k = (t * 37 + i) % 64;
                        cache.insert(k, k + 1);
                        if let Some(v) = cache.get(&k) {
                            assert_eq!(v, k + 1, "a striped read must never tear");
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn single_stripe_service_still_serves_and_caches() {
        // cache_stripes: 1 is the exact pre-striping layout; the service
        // must behave identically (the bench compares the two for perf).
        let fw = small_framework();
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());
        let service = Service::new(
            fw,
            ServiceConfig {
                cache_stripes: 1,
                workers: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let mut partitions = Vec::new();
        for _ in 0..3 {
            let served = service
                .submit(
                    Arc::clone(&kernel),
                    inst.nd.clone(),
                    inst.args.clone(),
                    inst.bufs.clone(),
                )
                .expect("admitted")
                .wait()
                .unwrap();
            partitions.push(served.partition);
        }
        assert!(partitions.windows(2).all(|w| w[0] == w[1]));
        assert!(service.stats().cache_hits >= 1);
        service.shutdown();
    }

    use hetpart_oclsim::DeviceFaults;

    /// A framework whose predictor always answers the given partition
    /// (single-class KNN): fault tests control exactly which devices a
    /// launch uses, independent of training noise.
    fn pinned_framework(tenths: Vec<u8>) -> Framework {
        let probe = hetpart_suite::by_name("vec_add").unwrap().compile();
        let dim = probe.static_features.to_vec().len();
        let x = vec![vec![0.0; dim]];
        let pipeline = hetpart_ml::Pipeline::fit(&ModelConfig::Knn { k: 1 }, &x, &[0], 1);
        let machine = machines::mc2();
        let predictor = PartitionPredictor::new(
            machine.name.clone(),
            machine.fingerprint(),
            vec![Partition::from_tenths(tenths)],
            pipeline,
            FeatureSet::StaticOnly,
            dim,
        )
        .unwrap();
        Framework {
            executor: Executor::new(machines::mc2()),
            predictor,
        }
    }

    fn gpu1_only_faulty(faults: DeviceFaults, config: ServiceConfig) -> Service {
        // All work pinned to device 1 (the first GPU), which is the
        // faulted device: every launch hits the fault machinery.
        let fw = pinned_framework(vec![0, 10, 0]);
        Service::new(
            fw,
            ServiceConfig {
                workers: 1,
                fault_plan: Some(FaultPlan {
                    seed: 7,
                    faults: vec![faults],
                }),
                ..config
            },
        )
        .unwrap()
    }

    fn submit_vec_add(service: &Service) -> Result<Ticket, DeployError> {
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());
        service.submit(
            kernel,
            inst.nd.clone(),
            inst.args.clone(),
            inst.bufs.clone(),
        )
    }

    #[test]
    fn transient_faults_retry_then_replan_to_survivors() {
        let service = gpu1_only_faulty(
            DeviceFaults {
                transient_rate: 1.0,
                ..DeviceFaults::none(1)
            },
            ServiceConfig {
                max_retries: 2,
                backoff_base: Duration::ZERO,
                breaker_threshold: 0,
                ..ServiceConfig::default()
            },
        );
        let served = submit_vec_add(&service).unwrap().wait().unwrap();
        // Retries exhausted on the always-faulting GPU, then re-planned
        // onto the CPU (the only survivor of [0,10,0] minus device 1).
        assert_eq!(served.partition, Partition::from_tenths(vec![10, 0, 0]));
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let inst = bench.instance(bench.smallest_size());
        bench
            .check_outputs(&inst, &served.bufs)
            .unwrap_or_else(|e| panic!("{e}"));
        let stats = service.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.replans, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.errors, 0);
        service.shutdown();
    }

    #[test]
    fn dead_device_replans_and_subsequent_launches_pre_avoid_it() {
        let service = gpu1_only_faulty(
            DeviceFaults {
                dies_at_launch: Some(0),
                ..DeviceFaults::none(1)
            },
            ServiceConfig::default(),
        );
        let first = submit_vec_add(&service).unwrap().wait().unwrap();
        assert_eq!(first.partition, Partition::from_tenths(vec![10, 0, 0]));
        let mid = service.stats();
        assert_eq!(mid.replans, 1);
        assert_eq!(mid.retries, 0, "permanent death must not burn retries");
        assert_eq!(mid.dead_devices, 1);
        // The death is sticky: the next launch routes around the device
        // *before* executing (a second replan, still zero retries).
        let second = submit_vec_add(&service).unwrap().wait().unwrap();
        assert_eq!(second.partition, Partition::from_tenths(vec![10, 0, 0]));
        assert_eq!(second.bufs, first.bufs);
        let stats = service.stats();
        assert_eq!(stats.replans, 2);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.completed, 2);
        service.shutdown();
    }

    #[test]
    fn panicking_job_resolves_ticket_and_service_keeps_serving() {
        // Regression: a panic mid-job used to be survivable only because
        // every later lock `expect` had not yet been poisoned by it; now
        // the locks recover explicitly and the panic is accounted.
        let service = gpu1_only_faulty(
            DeviceFaults {
                panics_at_launch: Some(0),
                ..DeviceFaults::none(1)
            },
            ServiceConfig::default(),
        );
        let err = submit_vec_add(&service).unwrap().wait().unwrap_err();
        assert!(matches!(err, DeployError::Worker(_)), "{err}");
        let mid = service.stats();
        assert_eq!(mid.worker_panics, 1);
        assert_eq!(mid.errors, 1);
        // The panic fired once (launch ordinal 0); the service keeps
        // serving on the same device afterwards.
        let served = submit_vec_add(&service).unwrap().wait().unwrap();
        assert_eq!(served.partition, Partition::from_tenths(vec![0, 10, 0]));
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let inst = bench.instance(bench.smallest_size());
        bench
            .check_outputs(&inst, &served.bufs)
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(service.stats().completed, 1);
        service.shutdown();
    }

    /// A service whose single worker is deterministically busy for tens
    /// of milliseconds per job (every attempt transiently faults, each
    /// retry sleeps 1ms) — the backbone of the overload tests.
    fn busy_service(config: ServiceConfig) -> Service {
        gpu1_only_faulty(
            DeviceFaults {
                transient_rate: 1.0,
                ..DeviceFaults::none(1)
            },
            ServiceConfig {
                max_retries: 50,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(1),
                breaker_threshold: 0,
                ..config
            },
        )
    }

    #[test]
    fn full_queue_sheds_with_typed_overload_error() {
        let service = busy_service(ServiceConfig {
            max_queue_depth: 1,
            ..ServiceConfig::default()
        });
        // First job: admitted, and we wait for the worker to actually pop
        // it (under a loaded test runner the worker's condvar wake-up can
        // lag past our next submission, which would shed job 2 as well).
        let first = submit_vec_add(&service).expect("empty queue admits");
        while !lock_recover(&service.shared.queue).jobs.is_empty() {
            std::thread::yield_now();
        }
        // Worker busy with job 1 (≥50ms of retry backoff): job 2 fills
        // the queue, job 3 must shed with the typed overload error.
        let second = submit_vec_add(&service).expect("empty queue admits");
        let err = match submit_vec_add(&service) {
            Err(e) => e,
            Ok(_) => panic!("full queue must shed"),
        };
        assert!(matches!(err, DeployError::Overloaded { depth: 1 }), "{err}");
        first.wait().unwrap();
        second.wait().unwrap();
        assert_eq!(service.stats().sheds, 1);
        // Load gone: admission works again.
        submit_vec_add(&service).unwrap().wait().unwrap();
        service.shutdown();
    }

    #[test]
    fn blocking_admission_waits_for_space_instead_of_shedding() {
        let service = busy_service(ServiceConfig {
            max_queue_depth: 1,
            admission: AdmissionPolicy::Block {
                deadline: Duration::from_secs(30),
            },
            ..ServiceConfig::default()
        });
        let tickets: Vec<_> = (0..3)
            .map(|_| submit_vec_add(&service).expect("blocking admission never sheds here"))
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.sheds, 0);
        assert_eq!(stats.completed, 3);
        service.shutdown();
    }

    #[test]
    fn wait_timeout_returns_the_ticket_until_the_job_completes() {
        let service = busy_service(ServiceConfig::default());
        let ticket = submit_vec_add(&service).unwrap();
        // The job spends ≥50ms in retry backoff; a 1ms wait must time out
        // and hand the ticket back.
        let ticket = match ticket.wait_timeout(Duration::from_millis(1)) {
            Err(t) => t,
            Ok(r) => panic!("job finished implausibly fast: {r:?}"),
        };
        ticket.wait().unwrap();
        service.shutdown();
    }

    #[test]
    fn shutdown_now_sheds_queued_jobs_but_finishes_in_flight_work() {
        let service = busy_service(ServiceConfig::default());
        let tickets: Vec<_> = (0..4).map(|_| submit_vec_add(&service).unwrap()).collect();
        let shed = service.shutdown_now();
        let results: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
        let completed = results.iter().filter(|r| r.is_ok()).count();
        let shed_tickets = results
            .iter()
            .filter(|r| matches!(r, Err(DeployError::Shed)))
            .count();
        assert_eq!(completed + shed_tickets, 4, "every ticket must resolve");
        assert_eq!(shed, shed_tickets);
        assert!(shed >= 1, "the busy worker cannot have drained the queue");
        // Submissions after shutdown shed immediately.
    }

    #[test]
    fn shutdown_drain_with_headroom_sheds_nothing() {
        let service = busy_service(ServiceConfig::default());
        let tickets: Vec<_> = (0..3).map(|_| submit_vec_add(&service).unwrap()).collect();
        let shed = service.shutdown_drain(Duration::from_secs(60));
        assert_eq!(shed, 0);
        for t in tickets {
            t.wait().unwrap();
        }
    }

    #[test]
    fn breaker_opens_after_threshold_cools_down_and_probes_half_open() {
        let h = HealthRegistry::new(3, 2, Duration::from_millis(20));
        assert!(h.avoided().is_empty());
        h.record_failure(1, false);
        assert!(h.avoided().is_empty(), "one failure is under threshold");
        h.record_failure(1, false);
        assert_eq!(h.avoided(), vec![1], "threshold reached: breaker open");
        assert_eq!(h.open_breakers(), 1);
        std::thread::sleep(Duration::from_millis(25));
        // Cooldown elapsed: the device is offered for one half-open probe.
        assert!(h.avoided().is_empty());
        // A failed probe re-opens immediately (no threshold counting).
        h.record_failure(1, false);
        assert_eq!(h.avoided(), vec![1]);
        std::thread::sleep(Duration::from_millis(25));
        assert!(h.avoided().is_empty());
        h.record_success(1);
        h.record_failure(1, false);
        assert!(h.avoided().is_empty(), "success reset the failure count");
        // Permanent death avoids the device regardless of breaker state.
        h.record_failure(2, true);
        assert_eq!(h.avoided(), vec![2]);
        assert_eq!(h.dead_devices(), 1);
    }

    #[test]
    fn serve_faults_env_escape_hatch_is_honored_when_unset() {
        // `SERVE_FAULTS` is process-global, so only the default (armed)
        // path is exercised here; the disarm path is covered by the chaos
        // integration suite, which controls the variable at spawn time.
        let service = gpu1_only_faulty(DeviceFaults::none(1), ServiceConfig::default());
        // A no-op plan never arms fault state at all.
        assert!(service.fault_state().is_none());
        let armed = gpu1_only_faulty(
            DeviceFaults {
                transient_rate: 0.5,
                ..DeviceFaults::none(1)
            },
            ServiceConfig::default(),
        );
        assert!(armed.fault_state().is_some());
        service.shutdown();
        armed.shutdown();
    }

    #[test]
    fn bad_submission_resolves_with_an_error_not_a_hang() {
        let fw = small_framework();
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());
        let service = Service::new(fw, ServiceConfig::default()).unwrap();
        // Drop the trailing scalar argument: the VM rejects the launch.
        let short_args = inst.args[..inst.args.len() - 1].to_vec();
        let err = service
            .submit(kernel, inst.nd.clone(), short_args, inst.bufs.clone())
            .expect("admitted")
            .wait()
            .unwrap_err();
        assert!(matches!(err, DeployError::Vm(_)), "{err}");
        assert_eq!(service.stats().errors, 1);
        service.shutdown();
    }
}
