//! The concurrent deployment service: enqueue launches, plan them once,
//! execute them with cached plans.
//!
//! The paper's deployment phase collects a launched program's runtime
//! features, feeds them to the trained model and runs the launch with the
//! predicted partitioning. [`Framework::run_auto`] does exactly that —
//! synchronously, re-probing the kernel on *every* launch. For serving
//! repeat traffic that is wasted work: the same (kernel, launch shape)
//! pair produces the same features, the same prediction and the same
//! transfer plan every time.
//!
//! [`Service`] wraps a [`Framework`] behind a submission API:
//!
//! * **Queue + worker pool** — [`Service::submit`] enqueues a launch and
//!   returns a [`Ticket`]; a pool of worker threads drains the queue.
//!   With more than one worker, feature collection for queued launches
//!   overlaps with execution of running ones.
//! * **Prediction cache** — plans are memoized under a [`PlanKey`]
//!   (kernel fingerprint + launch shape). A cache hit skips probe
//!   sampling, model inference *and* access analysis: the launch goes
//!   straight to [`Framework::execute_planned`], which runs only the
//!   kernel work itself. The cache is **lock-striped**
//!   ([`StripedCache`]): entries shard across
//!   [`ServiceConfig::cache_stripes`] independent mutexes by key hash,
//!   so a worker pool serving mixed traffic stops serializing on one
//!   cache mutex (`cache_stripes: 1` restores the single-mutex layout).
//! * **Stats** — hits, misses, completions, errors and cumulative
//!   plan/execute latency, via [`Service::stats`].
//!
//! Cache-key semantics: the key captures the kernel identity
//! ([`CompiledKernel::fingerprint`]), the NDRange, and every argument's
//! shape (scalar *values*, buffer *lengths and element types* — not
//! buffer contents). Two launches with the same key reuse one plan; for
//! kernels whose control flow depends on buffer contents the cached
//! partition is the one planned for the first-seen contents, which is the
//! deliberate trade of plan caching (set `cache_capacity: 0` to disable).
//! Execution itself always runs on the submitted buffers, so outputs are
//! exact either way. Workers racing on the *same cold key* may each plan
//! it once (the cache is populated after planning, not reserved before);
//! plans are deterministic, so the duplicates cost wasted probe work,
//! never wrong answers — single-flight dedup is future work.
//!
//! A second, opt-in tier memoizes whole results: with
//! `result_cache_capacity > 0`, a launch whose plan key *and* buffer
//! contents (64-bit content hash) match a previous launch returns that
//! launch's outputs without executing at all. The VM is deterministic, so
//! the memoized outputs are bit-identical to re-execution; the trade is
//! memory (cached output buffers) and the vanishing probability of a
//! 64-bit hash collision, which is why the tier is off by default.

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use hetpart_inspire::ir::NdRange;
use hetpart_inspire::vm::{ArgValue, BufferData};
use hetpart_inspire::{CompiledKernel, ScalarType};
use hetpart_runtime::{ExecutionReport, Partition};

use crate::predictor::{DeployError, Framework, LaunchPlan, PredictError};

/// The shape-identity of one kernel argument inside a [`PlanKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ArgKey {
    Int(i32),
    UInt(u32),
    /// Bit pattern — floats hash by representation.
    Float(u32),
    /// Binding index plus element type and length of the bound buffer.
    /// The index matters: `[Buffer(0), Buffer(1)]` and
    /// `[Buffer(1), Buffer(0)]` bind the same buffers to different
    /// parameters and must not share a plan (or a memoized result).
    Buffer {
        index: usize,
        elem: ScalarType,
        len: usize,
    },
    /// A buffer argument whose index has no backing buffer (the launch
    /// will be rejected by `Vm::check_args`, but the key must still be
    /// well-defined and distinct).
    DanglingBuffer {
        index: usize,
    },
}

/// What makes two launches "the same" to the prediction cache: the kernel
/// fingerprint plus the launch shape (NDRange dimensions, scalar argument
/// values, buffer lengths and element types). Buffer *contents* are
/// deliberately excluded — see the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    fingerprint: u64,
    dims: Vec<usize>,
    args: Vec<ArgKey>,
}

impl PlanKey {
    /// Build the cache key of a launch.
    pub fn of(
        kernel: &CompiledKernel,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &[BufferData],
    ) -> Self {
        let dims = (0..3).map(|d| nd.dim(d)).collect();
        let args = args
            .iter()
            .map(|a| match a {
                ArgValue::Int(v) => ArgKey::Int(*v),
                ArgValue::UInt(v) => ArgKey::UInt(*v),
                ArgValue::Float(v) => ArgKey::Float(v.to_bits()),
                ArgValue::Buffer(b) => match bufs.get(*b) {
                    Some(bd) => ArgKey::Buffer {
                        index: *b,
                        elem: bd.elem_type(),
                        len: bd.len(),
                    },
                    None => ArgKey::DanglingBuffer { index: *b },
                },
            })
            .collect();
        Self {
            fingerprint: kernel.fingerprint,
            dims,
            args,
        }
    }
}

/// 64-bit content hash of a launch's buffers (FxHash-style word folding —
/// fast enough that hashing is orders of magnitude cheaper than kernel
/// execution).
fn content_hash(bufs: &[BufferData]) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |w: u64| h = (h.rotate_left(5) ^ w).wrapping_mul(K);
    for bd in bufs {
        // Type tag then length: two same-bits buffers of different
        // scalar types must not collide.
        fold(match bd {
            BufferData::F32(_) => 1,
            BufferData::I32(_) => 2,
            BufferData::U32(_) => 3,
        });
        fold(bd.len() as u64);
        match bd {
            BufferData::F32(v) => v.iter().for_each(|x| fold(u64::from(x.to_bits()))),
            BufferData::I32(v) => v.iter().for_each(|x| fold(*x as u32 as u64)),
            BufferData::U32(v) => v.iter().for_each(|x| fold(u64::from(*x))),
        }
    }
    h
}

/// Bounded FIFO memo, generic over the cached value (plans and results).
/// One stripe of a [`StripedCache`].
struct FifoCache<K, V> {
    capacity: usize,
    map: HashMap<K, V>,
    order: VecDeque<K>,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> FifoCache<K, V> {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: &K) -> Option<V> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(evict) = self.order.pop_front() {
                    self.map.remove(&evict);
                }
            }
        }
    }
}

/// A bounded FIFO memo sharded across `N` independently locked stripes
/// by key hash — the serving-scale successor to one `Mutex<FifoCache>`.
///
/// With a single mutex every worker of the pool serializes on the cache
/// for each lookup and fill, even when they touch unrelated keys. Keys
/// hash to a fixed stripe, so concurrent operations on different stripes
/// never contend, and operations on the same key keep the same
/// consistency they had under one lock (a stripe *is* one lock).
///
/// The capacity splits evenly across stripes (rounded up), so eviction is
/// per-stripe FIFO: total occupancy never exceeds `capacity + stripes`.
/// `stripes == 1` is exactly the old single-mutex cache.
pub struct StripedCache<K, V> {
    stripes: Vec<Mutex<FifoCache<K, V>>>,
}

impl<K: Hash + Eq + Clone, V: Clone> StripedCache<K, V> {
    /// A cache holding ~`capacity` entries across `stripes` locks
    /// (`stripes` is clamped to at least 1; `capacity == 0` disables
    /// caching entirely).
    pub fn new(capacity: usize, stripes: usize) -> Self {
        let stripes = stripes.max(1);
        let per_stripe = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(stripes)
        };
        Self {
            stripes: (0..stripes)
                .map(|_| Mutex::new(FifoCache::new(per_stripe)))
                .collect(),
        }
    }

    fn stripe(&self, key: &K) -> &Mutex<FifoCache<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.stripes[(h.finish() as usize) % self.stripes.len()]
    }

    /// Clone out the cached value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.stripe(key).lock().expect("cache stripe").get(key)
    }

    /// Memoize `value` under `key` (no-op when the capacity is 0).
    pub fn insert(&self, key: K, value: V) {
        self.stripe(&key)
            .lock()
            .expect("cache stripe")
            .insert(key, value);
    }
}

/// A memoized launch outcome: everything a repeat of a bit-identical
/// launch needs to answer without executing. Shared via `Arc` so a cache
/// hit clones two words plus the output buffers it hands out.
struct CachedResult {
    partition: Partition,
    report: ExecutionReport,
    bufs: Vec<BufferData>,
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the queue. Defaults to the machine's
    /// available parallelism (at least 1).
    pub workers: usize,
    /// Maximum cached plans; `0` disables the prediction cache.
    pub cache_capacity: usize,
    /// Maximum memoized whole results (content-keyed tier); `0` — the
    /// default — disables result memoization. See the module docs.
    pub result_cache_capacity: usize,
    /// Lock stripes of the plan and result caches (clamped to at least
    /// 1). `1` restores the single-mutex cache; the default keeps a
    /// worker pool from serializing on one cache lock.
    pub cache_stripes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            cache_capacity: 1024,
            result_cache_capacity: 0,
            cache_stripes: 16,
        }
    }
}

/// The completed result of one served launch.
#[derive(Debug, Clone)]
pub struct ServedLaunch {
    /// The partitioning the launch ran with.
    pub partition: Partition,
    pub report: ExecutionReport,
    /// The submission's buffers, outputs filled in.
    pub bufs: Vec<BufferData>,
    /// Whether the plan came from the prediction cache.
    pub cache_hit: bool,
    /// Whether the whole result came from the content-keyed result memo
    /// (implies `cache_hit`; the launch did not execute).
    pub result_hit: bool,
    /// Seconds spent planning (probe + inference + access analysis);
    /// `0.0` on a cache hit.
    pub plan_seconds: f64,
    /// Seconds from dequeue to completion.
    pub service_seconds: f64,
}

struct TicketState {
    slot: Mutex<Option<Result<ServedLaunch, DeployError>>>,
    done: Condvar,
}

/// A handle to a submitted launch; [`Ticket::wait`] blocks until the
/// worker pool has executed it.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Block until the launch completes and take its result.
    pub fn wait(self) -> Result<ServedLaunch, DeployError> {
        let mut slot = self.state.slot.lock().expect("ticket lock");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.done.wait(slot).expect("ticket wait");
        }
    }
}

struct Job {
    kernel: Arc<CompiledKernel>,
    nd: NdRange,
    args: Vec<ArgValue>,
    bufs: Vec<BufferData>,
    ticket: Arc<TicketState>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    result_hits: AtomicU64,
    plan_ns: AtomicU64,
    exec_ns: AtomicU64,
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    pub submitted: u64,
    pub completed: u64,
    pub errors: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Launches answered entirely from the result memo (subset of
    /// `cache_hits`).
    pub result_hits: u64,
    /// Cumulative seconds spent in the planning phase (cold launches).
    pub plan_seconds: f64,
    /// Cumulative seconds spent executing kernels.
    pub exec_seconds: f64,
}

impl ServiceStats {
    /// Fraction of planned launches answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

struct Shared {
    framework: Framework,
    queue: Mutex<QueueState>,
    available: Condvar,
    plans: StripedCache<PlanKey, LaunchPlan>,
    /// Whether the result memo is enabled (fixed at construction; read
    /// without touching the `results` stripes).
    memoize_results: bool,
    results: StripedCache<(PlanKey, u64), Arc<CachedResult>>,
    stats: Stats,
}

/// The concurrent deployment service. See the module docs.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Start a service over a framework, validating up front that the
    /// predictor's label space fits the executor's machine.
    pub fn new(framework: Framework, config: ServiceConfig) -> Result<Self, PredictError> {
        framework.validate()?;
        let shared = Arc::new(Shared {
            framework,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            plans: StripedCache::new(config.cache_capacity, config.cache_stripes),
            memoize_results: config.result_cache_capacity > 0,
            results: StripedCache::new(config.result_cache_capacity, config.cache_stripes),
            stats: Stats::default(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hetpart-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        Ok(Self { shared, workers })
    }

    /// Enqueue a launch. The returned [`Ticket`] resolves once a worker
    /// has planned (or cache-hit) and executed it; `bufs` travel with the
    /// job and come back in the [`ServedLaunch`] with outputs filled in.
    pub fn submit(
        &self,
        kernel: Arc<CompiledKernel>,
        nd: NdRange,
        args: Vec<ArgValue>,
        bufs: Vec<BufferData>,
    ) -> Ticket {
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        let job = Job {
            kernel,
            nd,
            args,
            bufs,
            ticket: Arc::clone(&state),
        };
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.jobs.push_back(job);
        }
        self.shared.available.notify_one();
        Ticket { state }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.shared.stats;
        ServiceStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            errors: s.errors.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            result_hits: s.result_hits.load(Ordering::Relaxed),
            plan_seconds: s.plan_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            exec_seconds: s.exec_ns.load(Ordering::Relaxed) as f64 * 1e-9,
        }
    }

    /// The framework this service deploys.
    pub fn framework(&self) -> &Framework {
        &self.shared.framework
    }

    /// Stop accepting work, drain the queue, and join the workers.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).expect("queue wait");
            }
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process(shared, job.kernel, job.nd, job.args, job.bufs)
        }))
        .unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            Err(DeployError::Worker(msg))
        });
        if result.is_err() {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        }
        let mut slot = job.ticket.slot.lock().expect("ticket lock");
        *slot = Some(result);
        job.ticket.done.notify_all();
    }
}

fn process(
    shared: &Shared,
    kernel: Arc<CompiledKernel>,
    nd: NdRange,
    args: Vec<ArgValue>,
    mut bufs: Vec<BufferData>,
) -> Result<ServedLaunch, DeployError> {
    let started = Instant::now();
    let fw = &shared.framework;
    let key = PlanKey::of(&kernel, &nd, &args, &bufs);

    // Tier 2 (opt-in): a bit-identical launch replays its memoized result
    // without executing.
    let result_key = shared
        .memoize_results
        .then(|| (key.clone(), content_hash(&bufs)));
    if let Some(rk) = &result_key {
        if let Some(cached) = shared.results.get(rk) {
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.stats.result_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(ServedLaunch {
                partition: cached.partition.clone(),
                report: cached.report.clone(),
                bufs: cached.bufs.clone(),
                cache_hit: true,
                result_hit: true,
                plan_seconds: 0.0,
                service_seconds: started.elapsed().as_secs_f64(),
            });
        }
    }

    // Tier 1: reuse the plan for this launch shape, or build and memoize
    // one.
    let cached = shared.plans.get(&key);
    let (plan, cache_hit, plan_seconds) = match cached {
        Some(plan) => {
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            (plan, true, 0.0)
        }
        None => {
            let t = Instant::now();
            let plan = fw.prepare(&kernel, &nd, &args, &bufs)?;
            let plan_seconds = t.elapsed().as_secs_f64();
            shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .plan_ns
                .fetch_add((plan_seconds * 1e9) as u64, Ordering::Relaxed);
            shared.plans.insert(key.clone(), plan.clone());
            (plan, false, plan_seconds)
        }
    };

    let t = Instant::now();
    let report = fw.execute_planned(&kernel, &nd, &args, &mut bufs, &plan)?;
    shared
        .stats
        .exec_ns
        .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);

    if let Some(rk) = result_key {
        let cached = Arc::new(CachedResult {
            partition: plan.partition.clone(),
            report: report.clone(),
            bufs: bufs.clone(),
        });
        shared.results.insert(rk, cached);
    }

    Ok(ServedLaunch {
        partition: plan.partition,
        report,
        bufs,
        cache_hit,
        result_hit: false,
        plan_seconds,
        service_seconds: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HarnessConfig;
    use crate::db::FeatureSet;
    use crate::predictor::PartitionPredictor;
    use crate::train::collect_training_db;
    use hetpart_ml::{ModelConfig, TreeConfig};
    use hetpart_oclsim::machines;
    use hetpart_runtime::Executor;

    fn small_framework() -> Framework {
        let benches: Vec<_> = hetpart_suite::all()
            .into_iter()
            .filter(|b| ["vec_add", "blackscholes", "sgemm"].contains(&b.name))
            .collect();
        let cfg = HarnessConfig {
            sizes_per_benchmark: 2,
            sample_items: 32,
            step_tenths: 5,
            ..HarnessConfig::quick()
        };
        let db = collect_training_db(&machines::mc2(), &benches, &cfg).expect("training succeeds");
        let predictor = PartitionPredictor::train(
            &db,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::Both,
        );
        Framework {
            executor: Executor::new(machines::mc2()),
            predictor,
        }
    }

    #[test]
    fn served_launch_matches_run_auto_and_caches() {
        let fw = small_framework();
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());

        let mut serial_bufs = inst.bufs.clone();
        let (serial_partition, _) = fw
            .run_auto(&kernel, &inst.nd, &inst.args, &mut serial_bufs)
            .unwrap();

        let service = Service::new(fw, ServiceConfig::default()).unwrap();
        let cold = service
            .submit(
                Arc::clone(&kernel),
                inst.nd.clone(),
                inst.args.clone(),
                inst.bufs.clone(),
            )
            .wait()
            .unwrap();
        assert!(!cold.cache_hit);
        assert_eq!(cold.partition, serial_partition);
        assert_eq!(cold.bufs, serial_bufs);

        let warm = service
            .submit(
                kernel,
                inst.nd.clone(),
                inst.args.clone(),
                inst.bufs.clone(),
            )
            .wait()
            .unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.partition, serial_partition);
        assert_eq!(warm.bufs, serial_bufs);

        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.errors, 0);
        service.shutdown();
    }

    #[test]
    fn result_memo_replays_identical_launches_exactly() {
        let fw = small_framework();
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());
        let service = Service::new(
            fw,
            ServiceConfig {
                result_cache_capacity: 64,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let submit = |bufs: Vec<hetpart_inspire::vm::BufferData>| {
            service
                .submit(
                    Arc::clone(&kernel),
                    inst.nd.clone(),
                    inst.args.clone(),
                    bufs,
                )
                .wait()
                .unwrap()
        };
        let cold = submit(inst.bufs.clone());
        assert!(!cold.result_hit);
        let warm = submit(inst.bufs.clone());
        assert!(warm.result_hit && warm.cache_hit);
        assert_eq!(warm.bufs, cold.bufs);
        assert_eq!(warm.partition, cold.partition);
        assert_eq!(warm.report, cold.report);

        // Different contents (same shape) must execute, not replay.
        let mut other = inst.bufs.clone();
        match &mut other[0] {
            hetpart_inspire::vm::BufferData::F32(v) => v[0] += 1.0,
            _ => panic!("vec_add input 0 is f32"),
        }
        let different = submit(other);
        assert!(!different.result_hit, "contents changed: memo must miss");
        assert!(different.cache_hit, "plan tier still hits on same shape");
        assert_ne!(different.bufs, cold.bufs);
        assert_eq!(service.stats().result_hits, 1);
        service.shutdown();
    }

    #[test]
    fn plan_key_separates_kernels_sizes_and_scalars() {
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let kernel = bench.compile();
        let a = bench.instance(bench.smallest_size());
        let key_a = PlanKey::of(&kernel, &a.nd, &a.args, &a.bufs);
        assert_eq!(key_a, PlanKey::of(&kernel, &a.nd, &a.args, &a.bufs));

        let b = bench.instance(bench.sizes[1]);
        assert_ne!(key_a, PlanKey::of(&kernel, &b.nd, &b.args, &b.bufs));

        let other = hetpart_suite::by_name("triad").unwrap().compile();
        assert_ne!(key_a, PlanKey::of(&other, &a.nd, &a.args, &a.bufs));
    }

    #[test]
    fn plan_key_distinguishes_buffer_bindings() {
        // [Buffer(0), Buffer(1)] vs [Buffer(1), Buffer(0)]: same shapes,
        // opposite data flow — must not share a plan or memoized result.
        use hetpart_inspire::vm::{ArgValue, BufferData};
        let kernel = hetpart_inspire::compile(
            "kernel void copy(global const float* src, global float* dst) {
                int i = get_global_id(0);
                dst[i] = src[i];
            }",
        )
        .unwrap();
        let nd = hetpart_inspire::NdRange::d1(16);
        let bufs = vec![
            BufferData::F32(vec![1.0; 16]),
            BufferData::F32(vec![2.0; 16]),
        ];
        let fwd = [ArgValue::Buffer(0), ArgValue::Buffer(1)];
        let rev = [ArgValue::Buffer(1), ArgValue::Buffer(0)];
        assert_ne!(
            PlanKey::of(&kernel, &nd, &fwd, &bufs),
            PlanKey::of(&kernel, &nd, &rev, &bufs)
        );
        let aliased = [ArgValue::Buffer(0), ArgValue::Buffer(0)];
        assert_ne!(
            PlanKey::of(&kernel, &nd, &fwd, &bufs),
            PlanKey::of(&kernel, &nd, &aliased, &bufs)
        );
    }

    #[test]
    fn disabled_cache_never_hits() {
        let fw = small_framework();
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());
        let service = Service::new(
            fw,
            ServiceConfig {
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        for _ in 0..3 {
            let r = service
                .submit(
                    Arc::clone(&kernel),
                    inst.nd.clone(),
                    inst.args.clone(),
                    inst.bufs.clone(),
                )
                .wait()
                .unwrap();
            assert!(!r.cache_hit);
        }
        assert_eq!(service.stats().cache_misses, 3);
        service.shutdown();
    }

    #[test]
    fn striped_cache_agrees_with_single_stripe_and_bounds_occupancy() {
        // Same key set, any stripe count: identical visible contents.
        let single: StripedCache<u64, u64> = StripedCache::new(1024, 1);
        let striped: StripedCache<u64, u64> = StripedCache::new(1024, 16);
        for k in 0..512u64 {
            single.insert(k, k * 3);
            striped.insert(k, k * 3);
        }
        for k in 0..512u64 {
            assert_eq!(single.get(&k), Some(k * 3));
            assert_eq!(striped.get(&k), single.get(&k));
        }
        assert_eq!(striped.get(&9999), None);

        // Per-stripe FIFO keeps total occupancy near the capacity even
        // under heavy churn.
        let tiny: StripedCache<u64, u64> = StripedCache::new(32, 8);
        for k in 0..10_000u64 {
            tiny.insert(k, k);
        }
        let live = (0..10_000u64).filter(|k| tiny.get(k).is_some()).count();
        assert!(
            live <= 32 + 8,
            "occupancy {live} exceeds capacity + stripes"
        );

        // Capacity 0 disables caching regardless of stripe count.
        let off: StripedCache<u64, u64> = StripedCache::new(0, 16);
        off.insert(1, 1);
        assert_eq!(off.get(&1), None);
    }

    #[test]
    fn striped_cache_is_safe_under_concurrent_mixed_traffic() {
        let cache: Arc<StripedCache<u64, u64>> = Arc::new(StripedCache::new(256, 16));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let k = (t * 37 + i) % 64;
                        cache.insert(k, k + 1);
                        if let Some(v) = cache.get(&k) {
                            assert_eq!(v, k + 1, "a striped read must never tear");
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn single_stripe_service_still_serves_and_caches() {
        // cache_stripes: 1 is the exact pre-striping layout; the service
        // must behave identically (the bench compares the two for perf).
        let fw = small_framework();
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());
        let service = Service::new(
            fw,
            ServiceConfig {
                cache_stripes: 1,
                workers: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let mut partitions = Vec::new();
        for _ in 0..3 {
            let served = service
                .submit(
                    Arc::clone(&kernel),
                    inst.nd.clone(),
                    inst.args.clone(),
                    inst.bufs.clone(),
                )
                .wait()
                .unwrap();
            partitions.push(served.partition);
        }
        assert!(partitions.windows(2).all(|w| w[0] == w[1]));
        assert!(service.stats().cache_hits >= 1);
        service.shutdown();
    }

    #[test]
    fn bad_submission_resolves_with_an_error_not_a_hang() {
        let fw = small_framework();
        let bench = hetpart_suite::by_name("vec_add").unwrap();
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());
        let service = Service::new(fw, ServiceConfig::default()).unwrap();
        // Drop the trailing scalar argument: the VM rejects the launch.
        let short_args = inst.args[..inst.args.len() - 1].to_vec();
        let err = service
            .submit(kernel, inst.nd.clone(), short_args, inst.bufs.clone())
            .wait()
            .unwrap_err();
        assert!(matches!(err, DeployError::Vm(_)), "{err}");
        assert_eq!(service.stats().errors, 1);
        service.shutdown();
    }
}
