//! The evaluation harness: one function per figure/table of the paper plus
//! the extension experiments, all driven by a shared [`EvalContext`].
//!
//! Every experiment uses **leave-one-program-out** cross-validation: the
//! partitioning of each benchmark is predicted by a model trained on the
//! other 22 programs, exactly the paper's deployment scenario.

use hetpart_ml::{geometric_mean, leave_one_group_out, ModelConfig};
use hetpart_runtime::Partition;
use hetpart_suite::Benchmark;
use serde::{Deserialize, Serialize};

use crate::config::HarnessConfig;
use crate::db::{FeatureSet, TrainingDb};
use crate::report::{bar, cell, num, rule};
use crate::train::collect_training_db;

/// Shared measurement context: one training database per machine.
#[derive(Debug, Clone)]
pub struct EvalContext {
    pub cfg: HarnessConfig,
    pub benchmarks: Vec<Benchmark>,
    pub dbs: Vec<TrainingDb>,
}

impl EvalContext {
    /// Run the training-phase measurements for every configured machine.
    ///
    /// # Panics
    /// Panics if a bundled benchmark fails to measure — the suite's own
    /// tests guarantee it cannot; the panic message names the launch.
    pub fn build(cfg: HarnessConfig, benchmarks: Vec<Benchmark>) -> Self {
        let dbs = cfg
            .machines
            .iter()
            .map(|m| {
                collect_training_db(m, &benchmarks, &cfg)
                    .unwrap_or_else(|e| panic!("training on {}: {e}", m.name))
            })
            .collect();
        Self {
            cfg,
            benchmarks,
            dbs,
        }
    }

    /// Like [`EvalContext::build`], but with **per-machine sharded
    /// collection**: each machine's measurements stream into JSONL shards
    /// under `<root>/<machine>/` as they complete, and each database is
    /// the merge of that machine's shards. Re-running over the same root
    /// resumes (already-measured records are loaded, not re-measured), and
    /// the merged databases are bit-identical to [`EvalContext::build`]'s.
    pub fn build_sharded(
        cfg: HarnessConfig,
        benchmarks: Vec<Benchmark>,
        root: &std::path::Path,
    ) -> Result<Self, crate::train::TrainError> {
        let dbs = cfg
            .machines
            .iter()
            .map(|m| {
                let shards = crate::db::ShardedDb::open(root, m)?;
                crate::train::collect_training_db_sharded(m, &benchmarks, &cfg, &shards)
            })
            .collect::<Result<_, _>>()?;
        Ok(Self {
            cfg,
            benchmarks,
            dbs,
        })
    }

    /// Build with the full 23-program suite.
    pub fn build_full_suite(cfg: HarnessConfig) -> Self {
        Self::build(cfg, hetpart_suite::all())
    }
}

/// Per-record outcome of a leave-one-program-out prediction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionOutcome {
    pub program: String,
    pub size: usize,
    pub predicted: Partition,
    pub oracle: Partition,
    /// Simulated time of the predicted partitioning.
    pub predicted_time: f64,
    pub oracle_time: f64,
    pub cpu_only_time: f64,
    pub gpu_only_time: f64,
}

/// Run LOPO-CV on one machine's database and price every prediction.
///
/// Outcomes follow [`TrainingDb::canonical_order`] — the row order of
/// [`TrainingDb::to_dataset`] — which is the identity for the canonical
/// databases an [`EvalContext`] holds.
pub fn lopo_outcomes(
    db: &TrainingDb,
    model: &ModelConfig,
    feature_set: FeatureSet,
) -> Vec<PredictionOutcome> {
    let (mut data, space) = db.to_dataset(feature_set);
    for row in &mut data.x {
        *row = crate::predictor::log_compress(row);
    }
    let cv = leave_one_group_out(model, &data);
    db.canonical_order()
        .into_iter()
        .map(|i| &db.records[i])
        .zip(&cv.predictions)
        .map(|(r, &cls)| {
            // Same policy as `PartitionPredictor::predict_vec`: a class
            // outside the label space is a loud error, never a silent
            // substitution that would skew the evaluation numbers.
            let predicted = space.get(cls).cloned().unwrap_or_else(|| {
                panic!(
                    "CV predicted class {cls} outside the label space of {} partitions \
                     for {} (n = {})",
                    space.len(),
                    r.program,
                    r.size
                )
            });
            let predicted_time = r.sweep.time_of(&predicted).unwrap_or_else(|| {
                panic!(
                    "partition {predicted} was not priced in the sweep for {} (n = {}) — \
                     evaluation needs a database collected with SweepMode::Full, not Pruned",
                    r.program, r.size
                )
            });
            PredictionOutcome {
                program: r.program.clone(),
                size: r.size,
                predicted,
                oracle: r.best().partition.clone(),
                predicted_time,
                oracle_time: r.best().time,
                cpu_only_time: r.sweep.cpu_only_time(),
                gpu_only_time: r.sweep.gpu_only_time(),
            }
        })
        .collect()
}

/// Price the StarPU-style dynamic chunked scheduler
/// ([`hetpart_runtime::dynamic_schedule`], the paper's related-work
/// baseline) on every record of one machine's database. Returns simulated
/// times aligned with [`lopo_outcomes`] (canonical record order).
fn dynsched_record_times(
    ctx: &EvalContext,
    machine: &hetpart_oclsim::Machine,
    db: &TrainingDb,
) -> Vec<f64> {
    use hetpart_runtime::{dynamic_schedule, DynSchedConfig, Executor, Launch};
    use std::collections::HashMap;
    let executor = Executor {
        sample_items: ctx.cfg.sample_items,
        ..Executor::new(machine.clone())
    };
    // Compile each program once; records share kernels across sizes.
    let mut compiled: HashMap<&str, hetpart_inspire::CompiledKernel> = HashMap::new();
    db.canonical_order()
        .into_iter()
        .map(|i| &db.records[i])
        .map(|r| {
            let bench = ctx
                .benchmarks
                .iter()
                .find(|b| b.name == r.program)
                .expect("record program is in the suite");
            let kernel = compiled
                .entry(r.program.as_str())
                .or_insert_with(|| bench.compile_with_modes(ctx.cfg.opt_level, ctx.cfg.regalloc));
            let inst = bench.instance(r.size);
            let launch = Launch::new(kernel, inst.nd.clone(), inst.args.clone());
            dynamic_schedule(&executor, &launch, &inst.bufs, DynSchedConfig::default())
                .expect("dynamic schedule succeeds")
                .time
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------

/// One program's bar pair in Figure 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure1Row {
    pub program: String,
    /// Geometric-mean speedup of the predicted partitioning over CPU-only
    /// across the program's problem sizes.
    pub over_cpu: f64,
    /// … and over GPU-only.
    pub over_gpu: f64,
}

/// Figure 1 for one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure1Machine {
    pub machine: String,
    pub rows: Vec<Figure1Row>,
    pub geomean_over_cpu: f64,
    pub geomean_over_gpu: f64,
    pub peak_over_cpu: f64,
    pub peak_over_gpu: f64,
    /// LOPO prediction accuracy (exact oracle-partition match).
    pub accuracy: f64,
    /// Geomean fraction of oracle performance achieved.
    pub oracle_fraction: f64,
    /// Related-work baseline row: geomean speedup of the dynamic chunked
    /// scheduler (StarPU-style, see [`hetpart_runtime::dynamic_schedule`])
    /// over CPU-only across all records of this machine.
    pub dynsched_over_cpu: f64,
    /// … and over GPU-only.
    pub dynsched_over_gpu: f64,
}

/// The complete Figure 1: both machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure1 {
    pub machines: Vec<Figure1Machine>,
}

/// Reproduce Figure 1: per-program speedups of the ML-guided partitioning
/// over the CPU-only and GPU-only default strategies on each machine.
pub fn figure1(ctx: &EvalContext) -> Figure1 {
    let machines = ctx
        .cfg
        .machines
        .iter()
        .zip(&ctx.dbs)
        .map(|(machine, db)| {
            let outcomes = lopo_outcomes(db, &ctx.cfg.model, FeatureSet::Both);
            let dyn_times = dynsched_record_times(ctx, machine, db);
            figure1_for_machine(db, &outcomes, &dyn_times)
        })
        .collect();
    Figure1 { machines }
}

fn figure1_for_machine(
    db: &TrainingDb,
    outcomes: &[PredictionOutcome],
    dyn_times: &[f64],
) -> Figure1Machine {
    let mut rows: Vec<Figure1Row> = Vec::new();
    let mut programs: Vec<String> = Vec::new();
    for o in outcomes {
        if !programs.contains(&o.program) {
            programs.push(o.program.clone());
        }
    }
    let mut all_cpu: Vec<f64> = Vec::new();
    let mut all_gpu: Vec<f64> = Vec::new();
    let mut peak_cpu = 0.0f64;
    let mut peak_gpu = 0.0f64;
    for p in &programs {
        let per: Vec<&PredictionOutcome> = outcomes.iter().filter(|o| &o.program == p).collect();
        let cpu: Vec<f64> = per
            .iter()
            .map(|o| o.cpu_only_time / o.predicted_time)
            .collect();
        let gpu: Vec<f64> = per
            .iter()
            .map(|o| o.gpu_only_time / o.predicted_time)
            .collect();
        peak_cpu = peak_cpu.max(cpu.iter().copied().fold(0.0, f64::max));
        peak_gpu = peak_gpu.max(gpu.iter().copied().fold(0.0, f64::max));
        all_cpu.extend(&cpu);
        all_gpu.extend(&gpu);
        rows.push(Figure1Row {
            program: p.clone(),
            over_cpu: geometric_mean(&cpu),
            over_gpu: geometric_mean(&gpu),
        });
    }
    let hits = outcomes.iter().filter(|o| o.predicted == o.oracle).count();
    let fractions: Vec<f64> = outcomes
        .iter()
        .map(|o| o.oracle_time / o.predicted_time)
        .collect();
    let dyn_cpu: Vec<f64> = outcomes
        .iter()
        .zip(dyn_times)
        .map(|(o, &d)| o.cpu_only_time / d)
        .collect();
    let dyn_gpu: Vec<f64> = outcomes
        .iter()
        .zip(dyn_times)
        .map(|(o, &d)| o.gpu_only_time / d)
        .collect();
    Figure1Machine {
        machine: db.machine.clone(),
        rows,
        geomean_over_cpu: geometric_mean(&all_cpu),
        geomean_over_gpu: geometric_mean(&all_gpu),
        peak_over_cpu: peak_cpu,
        peak_over_gpu: peak_gpu,
        accuracy: hits as f64 / outcomes.len().max(1) as f64,
        oracle_fraction: geometric_mean(&fractions),
        dynsched_over_cpu: geometric_mean(&dyn_cpu),
        dynsched_over_gpu: geometric_mean(&dyn_gpu),
    }
}

impl Figure1 {
    /// Render the figure as ASCII bar charts, one block per machine.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Figure 1: speedup of the ML-guided task partitioning over CPU-only and\n\
             GPU-only execution, per program and target architecture.\n\n",
        );
        for m in &self.machines {
            let max = m.peak_over_cpu.max(m.peak_over_gpu).max(1.0);
            out.push_str(&format!("== machine {} ==\n", m.machine));
            out.push_str(&format!(
                "{} {} {} speedup bars (scale max {:.1}x)\n",
                cell("program", 18),
                cell("overCPU", 8),
                cell("overGPU", 8),
                max,
            ));
            out.push_str(&format!("{}\n", rule(76)));
            for r in &m.rows {
                out.push_str(&format!(
                    "{} {} {} C|{}\n{} {} {} G|{}\n",
                    cell(&r.program, 18),
                    num(r.over_cpu, 8),
                    cell("", 8),
                    bar(r.over_cpu, max, 38),
                    cell("", 18),
                    cell("", 8),
                    num(r.over_gpu, 8),
                    bar(r.over_gpu, max, 38),
                ));
            }
            out.push_str(&format!("{}\n", rule(76)));
            out.push_str(&format!(
                "{} {} {} C|{}\n{} {} {} G|{}\n",
                cell("dynsched (base)", 18),
                num(m.dynsched_over_cpu, 8),
                cell("", 8),
                bar(m.dynsched_over_cpu, max, 38),
                cell("", 18),
                cell("", 8),
                num(m.dynsched_over_gpu, 8),
                bar(m.dynsched_over_gpu, max, 38),
            ));
            out.push_str(&format!("{}\n", rule(76)));
            out.push_str(&format!(
                "geomean over CPU-only: {:.2}x   over GPU-only: {:.2}x\n",
                m.geomean_over_cpu, m.geomean_over_gpu
            ));
            out.push_str(&format!(
                "dynamic-scheduler baseline (StarPU-style): {:.2}x over CPU-only, \
                 {:.2}x over GPU-only\n",
                m.dynsched_over_cpu, m.dynsched_over_gpu
            ));
            out.push_str(&format!(
                "peak    over CPU-only: {:.1}x   over GPU-only: {:.1}x\n",
                m.peak_over_cpu, m.peak_over_gpu
            ));
            out.push_str(&format!(
                "prediction accuracy: {:.1}%   of-oracle performance: {:.1}%\n\n",
                m.accuracy * 100.0,
                m.oracle_fraction * 100.0
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Prose claim P1: default-strategy comparison
// ---------------------------------------------------------------------

/// Which default strategy wins per program on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefaultStrategyMachine {
    pub machine: String,
    /// Programs whose geomean CPU-only time beats GPU-only.
    pub cpu_wins: Vec<String>,
    pub gpu_wins: Vec<String>,
}

/// P1: "in almost all test cases, the CPU-only strategy delivers a higher
/// performance on mc1, while on mc2 the GPU-only strategy usually performs
/// better."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefaultStrategyReport {
    pub machines: Vec<DefaultStrategyMachine>,
}

/// Compare the two default strategies per program per machine.
pub fn default_strategy_comparison(ctx: &EvalContext) -> DefaultStrategyReport {
    let machines = ctx
        .dbs
        .iter()
        .map(|db| {
            let mut cpu_wins = Vec::new();
            let mut gpu_wins = Vec::new();
            let mut programs: Vec<String> = Vec::new();
            for r in &db.records {
                if !programs.contains(&r.program) {
                    programs.push(r.program.clone());
                }
            }
            for p in &programs {
                // Compare at the program's largest measured size — the
                // representative "benchmark default" configuration.
                let r = db
                    .records
                    .iter()
                    .filter(|r| &r.program == p)
                    .max_by_key(|r| r.size)
                    .expect("program has records");
                if r.sweep.gpu_only_time() > r.sweep.cpu_only_time() {
                    cpu_wins.push(p.clone());
                } else {
                    gpu_wins.push(p.clone());
                }
            }
            DefaultStrategyMachine {
                machine: db.machine.clone(),
                cpu_wins,
                gpu_wins,
            }
        })
        .collect();
    DefaultStrategyReport { machines }
}

impl DefaultStrategyReport {
    /// Render the per-machine winner counts.
    pub fn render(&self) -> String {
        let mut out = String::from("Default-strategy comparison (paper claim P1)\n");
        for m in &self.machines {
            out.push_str(&format!(
                "{}: CPU-only wins {} programs, GPU-only wins {}\n",
                m.machine,
                m.cpu_wins.len(),
                m.gpu_wins.len()
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Prose claim P2: the optimum depends on program, size, machine
// ---------------------------------------------------------------------

/// P2 statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleSensitivity {
    /// Distinct oracle partitionings across the whole database, per machine.
    pub distinct_best_per_machine: Vec<(String, usize)>,
    /// Fraction of programs whose oracle partitioning changes across their
    /// size ladder (per machine).
    pub size_sensitive_fraction: Vec<(String, f64)>,
    /// Fraction of (program, size) pairs whose oracle differs between the
    /// first two machines.
    pub cross_machine_disagreement: f64,
}

/// Measure how the oracle-optimal partitioning moves with program, size
/// and machine.
pub fn oracle_sensitivity(ctx: &EvalContext) -> OracleSensitivity {
    let mut distinct_best_per_machine = Vec::new();
    let mut size_sensitive_fraction = Vec::new();
    for db in &ctx.dbs {
        let mut all: Vec<Partition> = db
            .records
            .iter()
            .map(|r| r.best().partition.clone())
            .collect();
        all.sort();
        all.dedup();
        distinct_best_per_machine.push((db.machine.clone(), all.len()));

        let mut programs: Vec<String> = Vec::new();
        for r in &db.records {
            if !programs.contains(&r.program) {
                programs.push(r.program.clone());
            }
        }
        let sensitive = programs
            .iter()
            .filter(|p| {
                let mut bests: Vec<Partition> = db
                    .records
                    .iter()
                    .filter(|r| &r.program == *p)
                    .map(|r| r.best().partition.clone())
                    .collect();
                bests.sort();
                bests.dedup();
                bests.len() > 1
            })
            .count();
        size_sensitive_fraction.push((
            db.machine.clone(),
            sensitive as f64 / programs.len().max(1) as f64,
        ));
    }

    let cross_machine_disagreement = if ctx.dbs.len() >= 2 {
        let a = &ctx.dbs[0];
        let b = &ctx.dbs[1];
        let mut total = 0usize;
        let mut differ = 0usize;
        for ra in &a.records {
            if let Some(rb) = b
                .records
                .iter()
                .find(|r| r.program == ra.program && r.size == ra.size)
            {
                total += 1;
                if rb.best().partition != ra.best().partition {
                    differ += 1;
                }
            }
        }
        differ as f64 / total.max(1) as f64
    } else {
        0.0
    };

    OracleSensitivity {
        distinct_best_per_machine,
        size_sensitive_fraction,
        cross_machine_disagreement,
    }
}

impl OracleSensitivity {
    /// Render the sensitivity statistics.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Oracle sensitivity (paper claim P2: the best partitioning depends on\n\
             program, problem size and machine)\n",
        );
        for (m, d) in &self.distinct_best_per_machine {
            out.push_str(&format!("{m}: {d} distinct oracle partitionings\n"));
        }
        for (m, f) in &self.size_sensitive_fraction {
            out.push_str(&format!(
                "{m}: {:.0}% of programs change their optimum with problem size\n",
                f * 100.0
            ));
        }
        out.push_str(&format!(
            "cross-machine: {:.0}% of (program, size) pairs have different optima\n",
            self.cross_machine_disagreement * 100.0
        ));
        out
    }
}

// ---------------------------------------------------------------------
// Extension E1: model comparison
// ---------------------------------------------------------------------

/// One row of the model-comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRow {
    pub model: String,
    /// Mean LOPO accuracy over machines.
    pub accuracy: f64,
    /// Geomean fraction of oracle performance.
    pub oracle_fraction: f64,
    pub speedup_over_cpu: f64,
    pub speedup_over_gpu: f64,
}

/// E1: the "machine learning approach" ablated over model families.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelComparison {
    pub rows: Vec<ModelRow>,
}

/// Compare all model families under LOPO-CV on every machine, plus the
/// model-free related-work baseline (the StarPU-style dynamic scheduler)
/// as the final row.
pub fn model_comparison(ctx: &EvalContext) -> ModelComparison {
    let mut rows: Vec<ModelRow> = ModelConfig::all_defaults()
        .into_iter()
        .map(|model| summarize_model(ctx, &model, FeatureSet::Both, model.name().to_string()))
        .collect();
    rows.push(dynsched_row(ctx));
    ModelComparison { rows }
}

/// The dynamic-scheduler baseline as a [`ModelRow`]: it predicts no
/// partitioning (accuracy is reported as 0), but its simulated times slot
/// into the same oracle-fraction and speedup columns, which is what the
/// paper's related-work comparison needs.
fn dynsched_row(ctx: &EvalContext) -> ModelRow {
    let mut fractions = Vec::new();
    let mut over_cpu = Vec::new();
    let mut over_gpu = Vec::new();
    for (machine, db) in ctx.cfg.machines.iter().zip(&ctx.dbs) {
        let times = dynsched_record_times(ctx, machine, db);
        let ordered = db.canonical_order().into_iter().map(|i| &db.records[i]);
        for (r, &t) in ordered.zip(&times) {
            fractions.push(r.best().time / t);
            over_cpu.push(r.sweep.cpu_only_time() / t);
            over_gpu.push(r.sweep.gpu_only_time() / t);
        }
    }
    ModelRow {
        model: "dynsched (baseline)".to_string(),
        accuracy: 0.0,
        oracle_fraction: geometric_mean(&fractions),
        speedup_over_cpu: geometric_mean(&over_cpu),
        speedup_over_gpu: geometric_mean(&over_gpu),
    }
}

fn summarize_model(
    ctx: &EvalContext,
    model: &ModelConfig,
    fs: FeatureSet,
    label: String,
) -> ModelRow {
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut fractions = Vec::new();
    let mut over_cpu = Vec::new();
    let mut over_gpu = Vec::new();
    for db in &ctx.dbs {
        for o in lopo_outcomes(db, model, fs) {
            total += 1;
            if o.predicted == o.oracle {
                hits += 1;
            }
            fractions.push(o.oracle_time / o.predicted_time);
            over_cpu.push(o.cpu_only_time / o.predicted_time);
            over_gpu.push(o.gpu_only_time / o.predicted_time);
        }
    }
    ModelRow {
        model: label,
        accuracy: hits as f64 / total.max(1) as f64,
        oracle_fraction: geometric_mean(&fractions),
        speedup_over_cpu: geometric_mean(&over_cpu),
        speedup_over_gpu: geometric_mean(&over_gpu),
    }
}

impl ModelComparison {
    /// Render the comparison table.
    pub fn render(&self) -> String {
        let mut out = String::from("Model comparison (E1), leave-one-program-out\n");
        out.push_str(&format!(
            "{} {} {} {} {}\n{}\n",
            cell("model", 16),
            cell("acc%", 7),
            cell("oracle%", 8),
            cell("vs CPU", 7),
            cell("vs GPU", 7),
            rule(48)
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{} {} {} {} {}\n",
                cell(&r.model, 16),
                num(r.accuracy * 100.0, 7),
                num(r.oracle_fraction * 100.0, 8),
                num(r.speedup_over_cpu, 7),
                num(r.speedup_over_gpu, 7),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Extension E2: feature ablation
// ---------------------------------------------------------------------

/// E2: static-only vs runtime-only vs both — the paper's central design
/// claim is that problem-size-dependent features are required.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureAblation {
    pub rows: Vec<ModelRow>,
}

/// Run the feature ablation with the configured model.
pub fn feature_ablation(ctx: &EvalContext) -> FeatureAblation {
    let rows = [
        FeatureSet::StaticOnly,
        FeatureSet::RuntimeOnly,
        FeatureSet::Both,
    ]
    .into_iter()
    .map(|fs| summarize_model(ctx, &ctx.cfg.model, fs, fs.label().to_string()))
    .collect();
    FeatureAblation { rows }
}

impl FeatureAblation {
    /// Render the ablation table.
    pub fn render(&self) -> String {
        let mut out = String::from("Feature ablation (E2), leave-one-program-out\n");
        out.push_str(&format!(
            "{} {} {} {} {}\n{}\n",
            cell("features", 18),
            cell("acc%", 7),
            cell("oracle%", 8),
            cell("vs CPU", 7),
            cell("vs GPU", 7),
            rule(50)
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{} {} {} {} {}\n",
                cell(&r.model, 18),
                num(r.accuracy * 100.0, 7),
                num(r.oracle_fraction * 100.0, 8),
                num(r.speedup_over_cpu, 7),
                num(r.speedup_over_gpu, 7),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Extension E3: partition-space step sensitivity
// ---------------------------------------------------------------------

/// E3: how much oracle performance a coarser partition space loses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepSensitivity {
    /// (step in tenths, space size, geomean oracle slowdown vs the finest
    /// measured space).
    pub rows: Vec<(u8, usize, f64)>,
}

/// Evaluate coarser partition-space discretizations by restricting each
/// record's sweep to partitions whose shares are multiples of the step.
pub fn step_sensitivity(ctx: &EvalContext) -> StepSensitivity {
    let steps: &[u8] = &[1, 2, 5, 10];
    let base_step = ctx.cfg.step_tenths;
    let rows = steps
        .iter()
        .filter(|&&s| s >= base_step && s % base_step == 0)
        .map(|&step| {
            let mut ratios = Vec::new();
            let mut space_size = 0usize;
            for db in &ctx.dbs {
                for r in &db.records {
                    let fine_best = r.best().time;
                    let coarse_best = r
                        .sweep
                        .entries
                        .iter()
                        .filter(|e| e.partition.shares().iter().all(|&sh| sh % step == 0))
                        .map(|e| e.time)
                        .fold(f64::INFINITY, f64::min);
                    space_size = space_size.max(
                        r.sweep
                            .entries
                            .iter()
                            .filter(|e| e.partition.shares().iter().all(|&sh| sh % step == 0))
                            .count(),
                    );
                    ratios.push(coarse_best / fine_best);
                }
            }
            (step, space_size, geometric_mean(&ratios))
        })
        .collect();
    StepSensitivity { rows }
}

impl StepSensitivity {
    /// Render the step-sensitivity table.
    pub fn render(&self) -> String {
        let mut out = String::from("Partition-space step sensitivity (E3)\n");
        out.push_str(&format!(
            "{} {} {}\n{}\n",
            cell("step", 6),
            cell("space", 7),
            cell("oracle slowdown", 16),
            rule(30)
        ));
        for (step, size, slow) in &self.rows {
            out.push_str(&format!(
                "{} {} {}x\n",
                cell(&format!("{}0%", step), 6),
                cell(&size.to_string(), 7),
                num(*slow, 8),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> EvalContext {
        static CTX: std::sync::OnceLock<EvalContext> = std::sync::OnceLock::new();
        CTX.get_or_init(build_tiny_ctx).clone()
    }

    fn build_tiny_ctx() -> EvalContext {
        let benches: Vec<Benchmark> = hetpart_suite::all()
            .into_iter()
            .filter(|b| {
                ["vec_add", "nbody", "blackscholes", "mandelbrot", "sgemm"].contains(&b.name)
            })
            .collect();
        let cfg = HarnessConfig {
            sizes_per_benchmark: 2,
            sample_items: 32,
            step_tenths: 5,
            model: hetpart_ml::ModelConfig::Knn { k: 3 },
            ..HarnessConfig::quick()
        };
        EvalContext::build(cfg, benches)
    }

    #[test]
    fn figure1_has_rows_for_every_program_and_machine() {
        let ctx = tiny_ctx();
        let fig = figure1(&ctx);
        assert_eq!(fig.machines.len(), 2);
        for m in &fig.machines {
            assert_eq!(m.rows.len(), 5);
            assert!(m.geomean_over_cpu.is_finite() && m.geomean_over_cpu > 0.0);
            assert!(m.peak_over_gpu >= m.geomean_over_gpu);
            assert!((0.0..=1.0).contains(&m.accuracy));
            assert!(m.oracle_fraction <= 1.0 + 1e-9);
        }
        let txt = fig.render();
        assert!(txt.contains("mc1") && txt.contains("mc2"));
        assert!(txt.contains("vec_add"));
    }

    #[test]
    fn oracle_never_loses_to_predictions_or_defaults() {
        let ctx = tiny_ctx();
        for db in &ctx.dbs {
            for o in lopo_outcomes(db, &ctx.cfg.model, FeatureSet::Both) {
                assert!(o.oracle_time <= o.predicted_time + 1e-12);
                assert!(o.oracle_time <= o.cpu_only_time + 1e-12);
                assert!(o.oracle_time <= o.gpu_only_time + 1e-12);
            }
        }
    }

    #[test]
    fn default_strategy_report_covers_all_programs() {
        let ctx = tiny_ctx();
        let rep = default_strategy_comparison(&ctx);
        for m in &rep.machines {
            assert_eq!(m.cpu_wins.len() + m.gpu_wins.len(), 5);
        }
        assert!(rep.render().contains("CPU-only wins"));
    }

    #[test]
    fn oracle_sensitivity_statistics_are_sane() {
        let ctx = tiny_ctx();
        let s = oracle_sensitivity(&ctx);
        assert_eq!(s.distinct_best_per_machine.len(), 2);
        for (_, d) in &s.distinct_best_per_machine {
            assert!(*d >= 1);
        }
        assert!((0.0..=1.0).contains(&s.cross_machine_disagreement));
        assert!(s.render().contains("distinct oracle partitionings"));
    }

    #[test]
    fn step_sensitivity_is_monotone() {
        let ctx = tiny_ctx();
        let s = step_sensitivity(&ctx);
        // Steps 5 and 10 are available from a step-5 context.
        assert_eq!(s.rows.len(), 2);
        let mut prev = 1.0 - 1e-12;
        for (_, _, slow) in &s.rows {
            assert!(
                *slow >= prev,
                "coarser spaces cannot be faster: {slow} < {prev}"
            );
            prev = *slow;
        }
        assert!(s.render().contains("oracle slowdown"));
    }

    #[test]
    fn scheduler_comparison_reports_each_machine() {
        let ctx = tiny_ctx();
        let sc = scheduler_comparison(&ctx);
        assert_eq!(sc.rows.len(), 2);
        for r in &sc.rows {
            assert!(r.dynamic_over_oracle >= 0.99, "oracle cannot lose: {r:?}");
            assert!((0.0..=1.0).contains(&r.predicted_win_rate));
            assert!(r.dynamic_over_predicted.is_finite());
        }
        assert!(sc.render().contains("dyn/pred"));
    }

    #[test]
    fn feature_importance_ranks_every_feature() {
        let ctx = tiny_ctx();
        let rep = feature_importance(&ctx);
        assert_eq!(rep.per_machine.len(), 2);
        for (_, imp) in &rep.per_machine {
            assert_eq!(
                imp.len(),
                hetpart_inspire::features::STATIC_FEATURE_DIM
                    + hetpart_runtime::RUNTIME_FEATURE_DIM
            );
            // Sorted descending.
            for w in imp.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
        assert!(rep.render().contains("top 8"));
    }

    #[test]
    fn figure1_includes_dynsched_baseline() {
        let ctx = tiny_ctx();
        let fig = figure1(&ctx);
        for m in &fig.machines {
            assert!(
                m.dynsched_over_cpu.is_finite() && m.dynsched_over_cpu > 0.0,
                "dynsched baseline must be priced: {m:?}"
            );
            assert!(m.dynsched_over_gpu.is_finite() && m.dynsched_over_gpu > 0.0);
        }
        let txt = fig.render();
        assert!(txt.contains("dynsched"), "baseline row must render");
    }

    #[test]
    fn model_comparison_ends_with_dynsched_baseline_row() {
        let ctx = tiny_ctx();
        let mc = model_comparison(&ctx);
        assert_eq!(
            mc.rows.len(),
            hetpart_ml::ModelConfig::all_defaults().len() + 1
        );
        let base = mc.rows.last().unwrap();
        assert_eq!(base.model, "dynsched (baseline)");
        // The model-free baseline cannot beat the oracle.
        assert!(base.oracle_fraction > 0.0 && base.oracle_fraction <= 1.0 + 1e-9);
        assert!(base.speedup_over_cpu.is_finite());
        assert!(mc.render().contains("dynsched (baseline)"));
    }

    #[test]
    fn feature_ablation_produces_three_rows() {
        let ctx = tiny_ctx();
        let a = feature_ablation(&ctx);
        assert_eq!(a.rows.len(), 3);
        for r in &a.rows {
            assert!(r.oracle_fraction > 0.0 && r.oracle_fraction <= 1.0 + 1e-9);
        }
        assert!(a.render().contains("static + runtime"));
    }
}

// ---------------------------------------------------------------------
// Extension E4: dynamic-scheduler baseline
// ---------------------------------------------------------------------

/// E4: the model-free alternative — a StarPU-style dynamic chunked
/// scheduler — versus the paper's offline-trained static prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerComparison {
    /// One row per machine.
    pub rows: Vec<SchedulerRow>,
}

/// Per-machine summary of the scheduler comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerRow {
    pub machine: String,
    /// Geomean of (dynamic time / ML-predicted time): > 1 means the
    /// trained model wins.
    pub dynamic_over_predicted: f64,
    /// Geomean of (dynamic time / oracle time).
    pub dynamic_over_oracle: f64,
    /// Fraction of (program, size) records where the ML prediction beats
    /// the dynamic scheduler.
    pub predicted_win_rate: f64,
}

/// Compare the LOPO-predicted static partitioning against the dynamic
/// chunked scheduler on every (program, size) record.
pub fn scheduler_comparison(ctx: &EvalContext) -> SchedulerComparison {
    let rows = ctx
        .cfg
        .machines
        .iter()
        .zip(&ctx.dbs)
        .map(|(machine, db)| {
            let outcomes = lopo_outcomes(db, &ctx.cfg.model, FeatureSet::Both);
            // Outcomes align with db.records, and so do the baseline times.
            let dyn_times = dynsched_record_times(ctx, machine, db);
            let mut ratios_pred = Vec::new();
            let mut ratios_oracle = Vec::new();
            let mut wins = 0usize;
            for (o, &dynamic) in outcomes.iter().zip(&dyn_times) {
                ratios_pred.push(dynamic / o.predicted_time);
                ratios_oracle.push(dynamic / o.oracle_time);
                if o.predicted_time < dynamic {
                    wins += 1;
                }
            }
            SchedulerRow {
                machine: db.machine.clone(),
                dynamic_over_predicted: geometric_mean(&ratios_pred),
                dynamic_over_oracle: geometric_mean(&ratios_oracle),
                predicted_win_rate: wins as f64 / outcomes.len().max(1) as f64,
            }
        })
        .collect();
    SchedulerComparison { rows }
}

impl SchedulerComparison {
    /// Render the comparison table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Dynamic-scheduler baseline (E4): StarPU-style chunked EFT scheduling\n\
             vs the offline-trained static prediction\n",
        );
        out.push_str(&format!(
            "{} {} {} {}\n{}\n",
            cell("machine", 9),
            cell("dyn/pred", 9),
            cell("dyn/oracle", 11),
            cell("pred wins", 10),
            rule(42)
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{} {} {} {}%\n",
                cell(&r.machine, 9),
                num(r.dynamic_over_predicted, 9),
                num(r.dynamic_over_oracle, 11),
                num(r.predicted_win_rate * 100.0, 9),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Extension E5: which features drive the prediction
// ---------------------------------------------------------------------

/// E5: permutation importance of every feature, per machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureImportanceReport {
    /// Per machine: (feature, importance), sorted descending.
    pub per_machine: Vec<(String, Vec<(String, f64)>)>,
}

/// Fit the configured model on each machine's full database and rank the
/// features by permutation importance.
pub fn feature_importance(ctx: &EvalContext) -> FeatureImportanceReport {
    use hetpart_ml::{permutation_importance, Pipeline};
    let per_machine = ctx
        .dbs
        .iter()
        .map(|db| {
            let (mut data, space) = db.to_dataset(FeatureSet::Both);
            for row in &mut data.x {
                *row = crate::predictor::log_compress(row);
            }
            let pipe = Pipeline::fit(&ctx.cfg.model, &data.x, &data.y, space.len());
            let imp = permutation_importance(&pipe, &data, 3, ctx.cfg.seed);
            (
                db.machine.clone(),
                imp.into_iter().map(|f| (f.feature, f.importance)).collect(),
            )
        })
        .collect();
    FeatureImportanceReport { per_machine }
}

impl FeatureImportanceReport {
    /// Render the top-8 features per machine.
    pub fn render(&self) -> String {
        let mut out = String::from("Feature importance (E5), permutation method, top 8\n");
        for (machine, imp) in &self.per_machine {
            out.push_str(&format!("-- {machine} --\n"));
            for (name, v) in imp.iter().take(8) {
                out.push_str(&format!("{} {}\n", cell(name, 28), num(v * 100.0, 7)));
            }
        }
        out
    }
}
