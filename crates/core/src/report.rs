//! Plain-text rendering helpers for experiment reports.

/// A left-aligned fixed-width cell.
pub fn cell(s: &str, width: usize) -> String {
    format!("{s:<width$}")
}

/// A right-aligned fixed-width numeric cell with 2 decimals.
pub fn num(v: f64, width: usize) -> String {
    format!("{v:>width$.2}")
}

/// An ASCII bar of `width` columns representing `value` on a `0..=max`
/// scale.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || !value.is_finite() {
        return String::new();
    }
    let filled = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(filled)
}

/// A horizontal rule.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(25.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn cells_align() {
        assert_eq!(cell("ab", 5), "ab   ");
        assert_eq!(num(2.4649, 8), "    2.46");
    }
}
