//! The training database: measured partition sweeps with the features of
//! each (program, problem size) pair.
//!
//! This is the paper's "database" that the training phase fills ("the
//! obtained performance measurements, together with the problem size
//! dependent features of the program, are collected and added to the
//! database") and from which the prediction model is generated.

use std::fs;
use std::io;
use std::path::Path;

use hetpart_inspire::features::STATIC_FEATURE_NAMES;
use hetpart_ml::Dataset;
use hetpart_runtime::{Partition, PartitionSweep, SweepEntry, RUNTIME_FEATURE_NAMES};
use serde::{Deserialize, Serialize};

/// Which feature columns a model sees (the E2 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureSet {
    /// Compile-time program features only.
    StaticOnly,
    /// Problem-size-dependent runtime features only.
    RuntimeOnly,
    /// Both — the paper's configuration.
    Both,
}

impl FeatureSet {
    /// Human-readable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            FeatureSet::StaticOnly => "static only",
            FeatureSet::RuntimeOnly => "runtime only",
            FeatureSet::Both => "static + runtime",
        }
    }
}

/// One training pattern: "the static features of a program, its runtime
/// features for a certain problem size as well as the best task
/// partitioning for the given program with the current input size" —
/// plus the full sweep so evaluation can price *any* partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingRecord {
    pub program: String,
    /// Dense benchmark index (the cross-validation group).
    pub program_idx: usize,
    /// Primary problem-size parameter.
    pub size: usize,
    pub static_features: Vec<f64>,
    pub runtime_features: Vec<f64>,
    pub sweep: PartitionSweep,
}

impl TrainingRecord {
    /// The oracle-best entry of this record's sweep.
    pub fn best(&self) -> &SweepEntry {
        self.sweep.best()
    }

    /// Feature vector for a feature-set choice.
    pub fn features(&self, set: FeatureSet) -> Vec<f64> {
        match set {
            FeatureSet::StaticOnly => self.static_features.clone(),
            FeatureSet::RuntimeOnly => self.runtime_features.clone(),
            FeatureSet::Both => {
                let mut v = self.static_features.clone();
                v.extend_from_slice(&self.runtime_features);
                v
            }
        }
    }
}

/// Feature names for a feature-set choice, aligned with
/// [`TrainingRecord::features`].
pub fn feature_names(set: FeatureSet) -> Vec<String> {
    let stat = STATIC_FEATURE_NAMES.iter().map(|s| s.to_string());
    let rt = RUNTIME_FEATURE_NAMES.iter().map(|s| s.to_string());
    match set {
        FeatureSet::StaticOnly => stat.collect(),
        FeatureSet::RuntimeOnly => rt.collect(),
        FeatureSet::Both => stat.chain(rt).collect(),
    }
}

/// The complete training database for one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingDb {
    /// Machine name the measurements were taken on.
    pub machine: String,
    pub records: Vec<TrainingRecord>,
}

impl TrainingDb {
    /// Persist as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        fs::write(path, json)
    }

    /// Load from JSON.
    pub fn load(path: &Path) -> io::Result<Self> {
        let data = fs::read_to_string(path)?;
        serde_json::from_str(&data).map_err(io::Error::other)
    }

    /// The distinct oracle-best partitionings, in first-appearance order —
    /// the label space of the classification problem.
    pub fn label_space(&self) -> Vec<Partition> {
        let mut space: Vec<Partition> = Vec::new();
        for r in &self.records {
            let best = r.best().partition.clone();
            if !space.contains(&best) {
                space.push(best);
            }
        }
        space
    }

    /// Build the ML dataset: features per `set`, labels = dense indices
    /// into [`TrainingDb::label_space`], groups = program index.
    pub fn to_dataset(&self, set: FeatureSet) -> (Dataset, Vec<Partition>) {
        let space = self.label_space();
        // Use the canonical names when the stored vectors have the
        // canonical dimensions, generic names otherwise (foreign DBs).
        let canonical = feature_names(set);
        let names = match self.records.first() {
            Some(r) if r.features(set).len() == canonical.len() => canonical,
            Some(r) => (0..r.features(set).len())
                .map(|i| format!("f{i}"))
                .collect(),
            None => canonical,
        };
        let mut data = Dataset::new(names);
        for r in &self.records {
            let label = space
                .iter()
                .position(|p| *p == r.best().partition)
                .expect("label space covers every best partition");
            data.push(r.features(set), label, r.program_idx);
        }
        (data, space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpart_runtime::SweepEntry;

    fn record(program: &str, idx: usize, size: usize, best: Vec<u8>) -> TrainingRecord {
        let sweep = PartitionSweep {
            entries: vec![
                SweepEntry {
                    partition: Partition::from_tenths(best),
                    time: 1.0,
                },
                SweepEntry {
                    partition: Partition::cpu_only(3),
                    time: 2.0,
                },
                SweepEntry {
                    partition: Partition::gpu_only(3),
                    time: 3.0,
                },
            ],
        };
        TrainingRecord {
            program: program.into(),
            program_idx: idx,
            size,
            static_features: vec![1.0, 2.0],
            runtime_features: vec![3.0],
            sweep,
        }
    }

    fn db() -> TrainingDb {
        TrainingDb {
            machine: "mc1".into(),
            records: vec![
                record("a", 0, 64, vec![5, 5, 0]),
                record("a", 0, 128, vec![0, 5, 5]),
                record("b", 1, 64, vec![5, 5, 0]),
            ],
        }
    }

    #[test]
    fn label_space_dedups_in_order() {
        let space = db().label_space();
        assert_eq!(space.len(), 2);
        assert_eq!(space[0], Partition::from_tenths(vec![5, 5, 0]));
        assert_eq!(space[1], Partition::from_tenths(vec![0, 5, 5]));
    }

    #[test]
    fn to_dataset_builds_dense_labels_and_groups() {
        let (data, space) = db().to_dataset(FeatureSet::Both);
        assert_eq!(data.len(), 3);
        assert_eq!(data.dim(), 3); // 2 static + 1 runtime (test fixtures)
        assert_eq!(data.y, vec![0, 1, 0]);
        assert_eq!(data.groups, vec![0, 0, 1]);
        assert_eq!(space.len(), 2);
    }

    #[test]
    fn feature_sets_project_columns() {
        let r = record("a", 0, 64, vec![10, 0, 0]);
        assert_eq!(r.features(FeatureSet::StaticOnly), vec![1.0, 2.0]);
        assert_eq!(r.features(FeatureSet::RuntimeOnly), vec![3.0]);
        assert_eq!(r.features(FeatureSet::Both), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn feature_names_match_real_dims() {
        use hetpart_inspire::features::STATIC_FEATURE_DIM;
        use hetpart_runtime::RUNTIME_FEATURE_DIM;
        assert_eq!(
            feature_names(FeatureSet::StaticOnly).len(),
            STATIC_FEATURE_DIM
        );
        assert_eq!(
            feature_names(FeatureSet::RuntimeOnly).len(),
            RUNTIME_FEATURE_DIM
        );
        assert_eq!(
            feature_names(FeatureSet::Both).len(),
            STATIC_FEATURE_DIM + RUNTIME_FEATURE_DIM
        );
    }

    #[test]
    fn save_load_roundtrip() {
        let d = db();
        let dir = std::env::temp_dir().join("hetpart_db_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        d.save(&path).unwrap();
        let back = TrainingDb::load(&path).unwrap();
        assert_eq!(d, back);
        std::fs::remove_file(path).ok();
    }
}
