//! The training database: measured partition sweeps with the features of
//! each (program, problem size) pair.
//!
//! This is the paper's "database" that the training phase fills ("the
//! obtained performance measurements, together with the problem size
//! dependent features of the program, are collected and added to the
//! database") and from which the prediction model is generated.
//!
//! Two persistence shapes exist:
//!
//! * [`TrainingDb`] — the in-memory view (one machine, all records), saved
//!   as a single schema-versioned JSON file.
//! * [`ShardedDb`] — one **JSONL shard per (machine, program)** under a
//!   root directory. Records are appended as they are measured (a crashed
//!   training run resumes instead of restarting), shards load lazily, and
//!   shards collected on different processes or machines merge into a
//!   [`TrainingDb`] view via [`ShardedDb::merge`].
//!
//! Everything downstream of a database is **merge-stable**: the label
//! space is a canonical total order over partitions (not first-appearance
//! order) and datasets are built in a canonical record order, so shuffling
//! records, re-collecting shards, or merging them in any order yields
//! bit-identical trained predictors.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use hetpart_inspire::features::STATIC_FEATURE_NAMES;
use hetpart_ml::Dataset;
use hetpart_oclsim::Machine;
use hetpart_runtime::{Partition, PartitionSweep, SweepEntry, RUNTIME_FEATURE_NAMES};
use serde::{Deserialize, Serialize};

/// Schema version written into every persisted database (monolithic JSON
/// and JSONL shard headers alike). Bump when the on-disk record layout
/// changes; loads of a different version fail with a descriptive error
/// instead of silently training on drifted data.
pub const DB_SCHEMA_VERSION: u32 = 3;

/// Why a persisted database could not be loaded or merged.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem failure (path included where known).
    Io { path: PathBuf, source: io::Error },
    /// The file is not valid JSON / does not match the record schema.
    Parse { path: PathBuf, detail: String },
    /// The file carries a different schema version than this build writes.
    SchemaVersion {
        path: PathBuf,
        found: Option<u64>,
        expected: u32,
    },
    /// A shard belongs to a different machine than the database it is
    /// being loaded or merged into.
    MachineMismatch {
        path: PathBuf,
        expected: String,
        found: String,
    },
    /// A shard carries the right machine *name* but a different hardware
    /// fingerprint — the device profiles changed between collection runs
    /// (edited profile JSON, different registry), so the measurements are
    /// not comparable even though the name matches.
    MachineFingerprintMismatch {
        path: PathBuf,
        machine: String,
        expected: u64,
        found: u64,
    },
    /// Two shards (or two lines of one shard) measured the same
    /// (program, size) pair — merging would double-count the record.
    DuplicateRecord { program: String, size: usize },
    /// [`ShardedDb::merge`] was called with no shard stores — usually a
    /// mis-computed shard list (wrong root path), not an empty machine.
    NoShards,
    /// The shard store was collected under a different harness
    /// configuration than the resuming run — mixing the measurements
    /// would train on inconsistent sweeps and features.
    ConfigMismatch {
        path: PathBuf,
        expected: String,
        found: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            DbError::Parse { path, detail } => {
                write!(f, "{}: {detail}", path.display())
            }
            DbError::SchemaVersion {
                path,
                found,
                expected,
            } => match found {
                Some(v) => write!(
                    f,
                    "{}: database schema version {v}, this build reads version {expected} — \
                     regenerate it (e.g. `cargo run --release --example train_and_deploy`)",
                    path.display()
                ),
                None => write!(
                    f,
                    "{}: database has no schema version (written before v{expected}) — \
                     regenerate it (e.g. `cargo run --release --example train_and_deploy`)",
                    path.display()
                ),
            },
            DbError::MachineMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: shard was measured on machine `{found}` but this database is for \
                 `{expected}` — per-machine databases must not mix measurements",
                path.display()
            ),
            DbError::MachineFingerprintMismatch {
                path,
                machine,
                expected,
                found,
            } => write!(
                f,
                "{}: shard was measured on a machine named `{machine}` with hardware \
                 fingerprint {found:#018x}, but this run's `{machine}` fingerprints as \
                 {expected:#018x} — the device profiles changed between runs; use a \
                 fresh shard root (or the original machine profile)",
                path.display()
            ),
            DbError::DuplicateRecord { program, size } => write!(
                f,
                "duplicate training record for `{program}` (n = {size}) — the same \
                 (program, size) pair was measured in more than one shard"
            ),
            DbError::NoShards => write!(
                f,
                "cannot merge zero shard stores — no machine or records to build a \
                 database from (is the shard root path right?)"
            ),
            DbError::ConfigMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: shards were collected under config `{found}` but this run uses \
                 `{expected}` — resuming would mix measurements taken under \
                 incompatible settings; use a fresh shard root (or the original config)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Which feature columns a model sees (the E2 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureSet {
    /// Compile-time program features only.
    StaticOnly,
    /// Problem-size-dependent runtime features only.
    RuntimeOnly,
    /// Both — the paper's configuration.
    Both,
}

impl FeatureSet {
    /// Human-readable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            FeatureSet::StaticOnly => "static only",
            FeatureSet::RuntimeOnly => "runtime only",
            FeatureSet::Both => "static + runtime",
        }
    }
}

/// One training pattern: "the static features of a program, its runtime
/// features for a certain problem size as well as the best task
/// partitioning for the given program with the current input size" —
/// plus the full sweep so evaluation can price *any* partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingRecord {
    pub program: String,
    /// Dense benchmark index (the cross-validation group). Canonical
    /// databases assign it as the rank of `program` among the database's
    /// distinct program names, so it survives shard merges unchanged.
    pub program_idx: usize,
    /// Primary problem-size parameter.
    pub size: usize,
    pub static_features: Vec<f64>,
    pub runtime_features: Vec<f64>,
    pub sweep: PartitionSweep,
}

impl TrainingRecord {
    /// The oracle-best entry of this record's sweep.
    pub fn best(&self) -> &SweepEntry {
        self.sweep.best()
    }

    /// Feature vector for a feature-set choice.
    pub fn features(&self, set: FeatureSet) -> Vec<f64> {
        match set {
            FeatureSet::StaticOnly => self.static_features.clone(),
            FeatureSet::RuntimeOnly => self.runtime_features.clone(),
            FeatureSet::Both => {
                let mut v = self.static_features.clone();
                v.extend_from_slice(&self.runtime_features);
                v
            }
        }
    }
}

/// Feature names for a feature-set choice, aligned with
/// [`TrainingRecord::features`].
pub fn feature_names(set: FeatureSet) -> Vec<String> {
    let stat = STATIC_FEATURE_NAMES.iter().map(|s| s.to_string());
    let rt = RUNTIME_FEATURE_NAMES.iter().map(|s| s.to_string());
    match set {
        FeatureSet::StaticOnly => stat.collect(),
        FeatureSet::RuntimeOnly => rt.collect(),
        FeatureSet::Both => stat.chain(rt).collect(),
    }
}

/// On-disk shape of a monolithic [`TrainingDb`] file.
#[derive(Serialize, Deserialize)]
struct DbFile {
    version: u32,
    machine: String,
    machine_fingerprint: u64,
    records: Vec<TrainingRecord>,
}

/// The complete training database for one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingDb {
    /// Machine name the measurements were taken on.
    pub machine: String,
    /// Hardware fingerprint ([`hetpart_oclsim::Machine::fingerprint`]) of
    /// that machine at collection time — catches profiles that changed
    /// under an unchanged name.
    pub machine_fingerprint: u64,
    pub records: Vec<TrainingRecord>,
}

impl TrainingDb {
    /// Persist as schema-versioned JSON. Serializes the fields in place
    /// (same layout as [`DbFile`]) instead of deep-cloning the records
    /// into a wrapper first.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        use serde::{Serialize as _, Value};
        let file = Value::Map(vec![
            ("version".to_string(), DB_SCHEMA_VERSION.to_value()),
            ("machine".to_string(), self.machine.to_value()),
            (
                "machine_fingerprint".to_string(),
                self.machine_fingerprint.to_value(),
            ),
            ("records".to_string(), self.records.to_value()),
        ]);
        let json = serde_json::to_string_pretty(&file).map_err(io::Error::other)?;
        fs::write(path, json)
    }

    /// Load from JSON, rejecting files of a different schema version with
    /// a descriptive error naming the file and both versions.
    pub fn load(path: &Path) -> Result<Self, DbError> {
        let data = fs::read_to_string(path).map_err(|source| DbError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let value: serde::Value = serde_json::from_str(&data).map_err(|e| DbError::Parse {
            path: path.to_path_buf(),
            detail: format!("not valid JSON: {e}"),
        })?;
        check_version(value.get("version"), path)?;
        let file: DbFile = serde_json::from_value(&value).map_err(|e| DbError::Parse {
            path: path.to_path_buf(),
            detail: format!("schema version matches but the records do not parse: {e}"),
        })?;
        Ok(Self {
            machine: file.machine,
            machine_fingerprint: file.machine_fingerprint,
            records: file.records,
        })
    }

    /// The distinct oracle-best partitionings in a **canonical total
    /// order** (sorted by their share vectors) — the label space of the
    /// classification problem.
    ///
    /// The order is a function of the record *set* only: shuffling
    /// records, merging shards, or re-collecting in a different batch
    /// order cannot permute class indices. (It used to be first-appearance
    /// order, which silently corrupted every saved predictor whenever a
    /// merge or re-collection reordered records.)
    pub fn label_space(&self) -> Vec<Partition> {
        let space: BTreeSet<Partition> = self
            .records
            .iter()
            .map(|r| r.best().partition.clone())
            .collect();
        space.into_iter().collect()
    }

    /// Indices of `records` in canonical order: sorted by
    /// (program name, size), ties keeping insertion order. Dataset rows
    /// and cross-validation predictions follow this order; for canonical
    /// databases (everything produced by collection or merge) it is the
    /// identity.
    pub fn canonical_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.records.len()).collect();
        order.sort_by(|&a, &b| {
            let (ra, rb) = (&self.records[a], &self.records[b]);
            ra.program
                .cmp(&rb.program)
                .then(ra.size.cmp(&rb.size))
                .then(a.cmp(&b))
        });
        order
    }

    /// Put the database into canonical form: records sorted by
    /// (program name, size) and `program_idx` reassigned as the rank of
    /// the program name among the database's distinct names. Collection
    /// and merge always return canonical databases; machine- and
    /// process-local benchmark orderings cannot leak into the dataset.
    pub fn canonicalize(&mut self) {
        self.records
            .sort_by(|a, b| a.program.cmp(&b.program).then(a.size.cmp(&b.size)));
        let names: BTreeSet<&str> = self.records.iter().map(|r| r.program.as_str()).collect();
        let rank: HashMap<&str, usize> = names.into_iter().zip(0..).collect();
        let ranks: Vec<usize> = self
            .records
            .iter()
            .map(|r| rank[r.program.as_str()])
            .collect();
        for (r, idx) in self.records.iter_mut().zip(ranks) {
            r.program_idx = idx;
        }
    }

    /// Build the ML dataset: features per `set`, labels = dense indices
    /// into [`TrainingDb::label_space`], groups = program index.
    ///
    /// Rows follow [`TrainingDb::canonical_order`] and labels index the
    /// canonical label space, so the dataset — and every predictor fitted
    /// on it — depends only on the record *set*, never on record order.
    pub fn to_dataset(&self, set: FeatureSet) -> (Dataset, Vec<Partition>) {
        let space = self.label_space();
        let class_of: HashMap<&Partition, usize> = space.iter().zip(0..).collect();
        // Use the canonical names when the stored vectors have the
        // canonical dimensions, generic names otherwise (foreign DBs).
        let canonical = feature_names(set);
        let names = match self.records.first() {
            Some(r) if r.features(set).len() == canonical.len() => canonical,
            Some(r) => (0..r.features(set).len())
                .map(|i| format!("f{i}"))
                .collect(),
            None => canonical,
        };
        let mut data = Dataset::new(names);
        for i in self.canonical_order() {
            let r = &self.records[i];
            let label = *class_of
                .get(&r.best().partition)
                .expect("label space covers every best partition");
            data.push(r.features(set), label, r.program_idx);
        }
        (data, space)
    }
}

// ---------------------------------------------------------------------
// Sharded persistence
// ---------------------------------------------------------------------

/// First line of every shard file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardHeader {
    version: u32,
    machine: String,
    machine_fingerprint: u64,
    program: String,
}

/// A training database sharded by (machine, program) under a root
/// directory:
///
/// ```text
/// <root>/<machine>/<program>.jsonl
/// ```
///
/// Each shard is a JSONL stream — a [`ShardHeader`] line (schema version,
/// machine, program) followed by one [`TrainingRecord`] per line, appended
/// as records are measured. Appends are crash-consistent: a torn final
/// line (the process died mid-write) is detected and dropped on load, and
/// the resumed run simply re-measures that record.
///
/// Shards collected by different processes — or different machines'
/// subtrees of a shared filesystem — combine with [`ShardedDb::merge`]
/// into a canonical [`TrainingDb`] whose label space and dataset are
/// independent of shard order.
#[derive(Debug, Clone)]
pub struct ShardedDb {
    dir: PathBuf,
    machine: String,
    machine_fingerprint: u64,
}

impl ShardedDb {
    /// Open (creating if needed) the shard directory for one machine under
    /// `root`. The store is bound to the machine's registry name *and* its
    /// hardware fingerprint: shards written by a differently-configured
    /// machine of the same name are rejected on load.
    pub fn open(root: impl Into<PathBuf>, machine: &Machine) -> Result<Self, DbError> {
        let dir = root.into().join(&machine.name);
        fs::create_dir_all(&dir).map_err(|source| DbError::Io {
            path: dir.clone(),
            source,
        })?;
        Ok(Self {
            dir,
            machine: machine.name.clone(),
            machine_fingerprint: machine.fingerprint(),
        })
    }

    /// The machine these shards were measured on.
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// Hardware fingerprint of the machine these shards were measured on.
    pub fn machine_fingerprint(&self) -> u64 {
        self.machine_fingerprint
    }

    /// The directory holding this machine's shard files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of one program's shard file.
    pub fn shard_path(&self, program: &str) -> PathBuf {
        self.dir.join(format!("{program}.jsonl"))
    }

    /// Path of the store's collection-config marker.
    fn config_path(&self) -> PathBuf {
        self.dir.join("CONFIG")
    }

    /// The recorded collection-config fingerprint, if any.
    pub fn config_marker(&self) -> Result<Option<String>, DbError> {
        match fs::read_to_string(self.config_path()) {
            Ok(s) => Ok(Some(s.trim().to_string())),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(source) => Err(DbError::Io {
                path: self.config_path(),
                source,
            }),
        }
    }

    /// Record the collection-config fingerprint of this store, or verify
    /// it matches the one recorded by an earlier run. Resuming with a
    /// different oracle configuration (sweep granularity, sample count,
    /// sweep mode) would silently mix incomparable measurements — the
    /// same failure class the schema version guards against, one level
    /// up.
    pub fn check_or_record_config(&self, fingerprint: &str) -> Result<(), DbError> {
        match self.config_marker()? {
            Some(found) if found == fingerprint => Ok(()),
            Some(found) => Err(DbError::ConfigMismatch {
                path: self.config_path(),
                expected: fingerprint.to_string(),
                found,
            }),
            None => {
                // Write-then-rename so a crash cannot leave a torn marker
                // that would block every future resume.
                let tmp = self.dir.join("CONFIG.tmp");
                let io_err = |path: PathBuf| {
                    move |source| DbError::Io {
                        path: path.clone(),
                        source,
                    }
                };
                fs::write(&tmp, format!("{fingerprint}\n")).map_err(io_err(tmp.clone()))?;
                fs::rename(&tmp, self.config_path()).map_err(io_err(self.config_path()))
            }
        }
    }

    /// Append one measured record to its program's shard, creating the
    /// shard (header line first) if this is the program's first record.
    ///
    /// If the shard ends in a torn line (a previous run crashed
    /// mid-append), the tail is truncated back to the last complete line
    /// first — appending after the fragment would glue two records into
    /// one unparseable line. Shards are single-writer: one process owns a
    /// (machine, program) shard at a time.
    pub fn append(&self, record: &TrainingRecord) -> Result<(), DbError> {
        use std::io::{Read, Seek, SeekFrom};
        let path = self.shard_path(&record.program);
        let io_err = |source| DbError::Io {
            path: path.clone(),
            source,
        };
        let mut file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len();
        let mut empty = len == 0;
        if len > 0 {
            file.seek(SeekFrom::End(-1)).map_err(io_err)?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last).map_err(io_err)?;
            if last[0] != b'\n' {
                // Torn tail from a crashed append: drop the fragment (the
                // caller re-measures that record).
                file.seek(SeekFrom::Start(0)).map_err(io_err)?;
                let mut content = String::new();
                file.read_to_string(&mut content).map_err(io_err)?;
                let keep = content.rfind('\n').map_or(0, |i| i + 1) as u64;
                file.set_len(keep).map_err(io_err)?;
                empty = keep == 0;
            }
        }
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
        let mut out = String::new();
        if empty {
            let header = ShardHeader {
                version: DB_SCHEMA_VERSION,
                machine: self.machine.clone(),
                machine_fingerprint: self.machine_fingerprint,
                program: record.program.clone(),
            };
            out.push_str(&serde_json::to_string(&header).map_err(|e| DbError::Parse {
                path: path.clone(),
                detail: e.to_string(),
            })?);
            out.push('\n');
        }
        out.push_str(&serde_json::to_string(record).map_err(|e| DbError::Parse {
            path: path.clone(),
            detail: e.to_string(),
        })?);
        out.push('\n');
        file.write_all(out.as_bytes()).map_err(io_err)
    }

    /// Programs with a shard file, sorted by name.
    pub fn programs(&self) -> Result<Vec<String>, DbError> {
        let entries = fs::read_dir(&self.dir).map_err(|source| DbError::Io {
            path: self.dir.clone(),
            source,
        })?;
        let mut programs = Vec::new();
        for entry in entries {
            let path = entry
                .map_err(|source| DbError::Io {
                    path: self.dir.clone(),
                    source,
                })?
                .path();
            if path.extension().is_some_and(|e| e == "jsonl") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    programs.push(stem.to_string());
                }
            }
        }
        programs.sort();
        Ok(programs)
    }

    /// Load one program's shard: validate the header (schema version,
    /// machine, program), parse the record lines, and drop a torn final
    /// line (crash mid-append) so the caller can re-measure it.
    ///
    /// A crash inside the shard's *first* append can leave an empty file
    /// or a torn header fragment; both read as an empty shard (the next
    /// append repairs the file), not an error — otherwise a resumed run
    /// could never get past its own crash. A *complete* header line that
    /// is wrong (legacy version, foreign machine) still fails loudly.
    pub fn load_shard(&self, program: &str) -> Result<Vec<TrainingRecord>, DbError> {
        let path = self.shard_path(program);
        let data = fs::read_to_string(&path).map_err(|source| DbError::Io {
            path: path.clone(),
            source,
        })?;
        // `append` writes whole lines (content + '\n') in one write, so an
        // unterminated final line is a torn crash artifact *even when its
        // prefix happens to parse as valid JSON* — counting such a record
        // as measured while `append`'s repair truncates it would silently
        // lose it from later merges. Strip the torn tail up front; every
        // surviving line is complete and must parse, loudly.
        let body = if data.ends_with('\n') {
            data.as_str()
        } else {
            &data[..data.rfind('\n').map_or(0, |i| i + 1)]
        };
        if body.is_empty() {
            // Empty file, or only a torn first line: a crash inside the
            // shard's first append. Reads as an empty shard (the next
            // append repairs the file) so a resumed run can get past its
            // own crash.
            return Ok(Vec::new());
        }
        let mut lines = body.lines().enumerate();
        let (_, header_line) = lines.next().expect("non-empty body has a first line");
        let header_value: serde::Value =
            serde_json::from_str(header_line).map_err(|e| DbError::Parse {
                path: path.clone(),
                detail: format!("header line is not valid JSON: {e}"),
            })?;
        check_version(header_value.get("version"), &path)?;
        let header: ShardHeader =
            serde_json::from_value(&header_value).map_err(|e| DbError::Parse {
                path: path.clone(),
                detail: format!("bad shard header: {e}"),
            })?;
        if header.machine != self.machine {
            return Err(DbError::MachineMismatch {
                path,
                expected: self.machine.clone(),
                found: header.machine,
            });
        }
        if header.machine_fingerprint != self.machine_fingerprint {
            return Err(DbError::MachineFingerprintMismatch {
                path,
                machine: self.machine.clone(),
                expected: self.machine_fingerprint,
                found: header.machine_fingerprint,
            });
        }
        if header.program != program {
            return Err(DbError::Parse {
                path,
                detail: format!(
                    "shard file is named `{program}` but its header says `{}`",
                    header.program
                ),
            });
        }
        let mut records = Vec::new();
        for (lineno, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let r: TrainingRecord = serde_json::from_str(line).map_err(|e| DbError::Parse {
                path: path.clone(),
                detail: format!("line {}: {e}", lineno + 1),
            })?;
            if r.program != program {
                return Err(DbError::Parse {
                    path,
                    detail: format!(
                        "line {}: record for `{}` inside the `{program}` shard",
                        lineno + 1,
                        r.program
                    ),
                });
            }
            records.push(r);
        }
        Ok(records)
    }

    /// The (program, size) pairs already measured into these shards — the
    /// resume set of an interrupted training run. Torn tails are excluded
    /// (they will be re-measured).
    pub fn existing_keys(&self) -> Result<HashSet<(String, usize)>, DbError> {
        let mut keys = HashSet::new();
        for program in self.programs()? {
            for r in self.load_shard(&program)? {
                keys.insert((r.program, r.size));
            }
        }
        Ok(keys)
    }

    /// Load every shard of this root into a canonical [`TrainingDb`].
    pub fn to_training_db(&self) -> Result<TrainingDb, DbError> {
        Self::merge(&[self])
    }

    /// Merge shards collected on different processes (or different roots
    /// of a shared filesystem) into one canonical [`TrainingDb`].
    ///
    /// All inputs must belong to the same machine; a (program, size) pair
    /// measured in more than one shard is an error (merging would
    /// double-count it). The result is canonical — records sorted by
    /// (program, size), `program_idx` ranked by name — so the merged
    /// database, its label space, and every predictor trained from it are
    /// **bit-identical regardless of shard order**, and identical to a
    /// monolithic collection of the same measurements.
    pub fn merge(parts: &[&ShardedDb]) -> Result<TrainingDb, DbError> {
        let first = parts.first().ok_or(DbError::NoShards)?;
        let machine = first.machine.clone();
        let machine_fingerprint = first.machine_fingerprint;
        let mut records: Vec<TrainingRecord> = Vec::new();
        let mut seen: HashSet<(String, usize)> = HashSet::new();
        // Stores carrying a collection-config marker must all agree —
        // measurements taken under different oracle settings are not
        // comparable.
        let mut config: Option<String> = None;
        for part in parts {
            if let Some(found) = part.config_marker()? {
                match &config {
                    Some(expected) if *expected != found => {
                        return Err(DbError::ConfigMismatch {
                            path: part.config_path(),
                            expected: expected.clone(),
                            found,
                        });
                    }
                    _ => config = Some(found),
                }
            }
        }
        for part in parts {
            if part.machine != machine {
                return Err(DbError::MachineMismatch {
                    path: part.dir.clone(),
                    expected: machine,
                    found: part.machine.clone(),
                });
            }
            if part.machine_fingerprint != machine_fingerprint {
                return Err(DbError::MachineFingerprintMismatch {
                    path: part.dir.clone(),
                    machine,
                    expected: machine_fingerprint,
                    found: part.machine_fingerprint,
                });
            }
            for program in part.programs()? {
                for r in part.load_shard(&program)? {
                    if !seen.insert((r.program.clone(), r.size)) {
                        return Err(DbError::DuplicateRecord {
                            program: r.program,
                            size: r.size,
                        });
                    }
                    records.push(r);
                }
            }
        }
        let mut db = TrainingDb {
            machine,
            machine_fingerprint,
            records,
        };
        db.canonicalize();
        Ok(db)
    }
}

/// Validate a persisted `version` field against [`DB_SCHEMA_VERSION`].
fn check_version(version: Option<&serde::Value>, path: &Path) -> Result<(), DbError> {
    let found = match version {
        Some(serde::Value::U64(v)) => Some(*v),
        Some(serde::Value::I64(v)) if *v >= 0 => Some(*v as u64),
        _ => None,
    };
    if found != Some(u64::from(DB_SCHEMA_VERSION)) {
        return Err(DbError::SchemaVersion {
            path: path.to_path_buf(),
            found,
            expected: DB_SCHEMA_VERSION,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpart_oclsim::machines;
    use hetpart_runtime::SweepEntry;

    fn record(program: &str, idx: usize, size: usize, best: Vec<u8>) -> TrainingRecord {
        let sweep = PartitionSweep {
            entries: vec![
                SweepEntry {
                    partition: Partition::from_tenths(best),
                    time: 1.0,
                },
                SweepEntry {
                    partition: Partition::cpu_only(3),
                    time: 2.0,
                },
                SweepEntry {
                    partition: Partition::gpu_only(3),
                    time: 3.0,
                },
            ],
        };
        TrainingRecord {
            program: program.into(),
            program_idx: idx,
            size,
            static_features: vec![1.0, 2.0],
            runtime_features: vec![3.0],
            sweep,
        }
    }

    fn db() -> TrainingDb {
        TrainingDb {
            machine: "mc1".into(),
            machine_fingerprint: machines::mc1().fingerprint(),
            records: vec![
                record("a", 0, 64, vec![5, 5, 0]),
                record("a", 0, 128, vec![0, 5, 5]),
                record("b", 1, 64, vec![5, 5, 0]),
            ],
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn label_space_is_canonical_not_first_appearance() {
        let space = db().label_space();
        assert_eq!(space.len(), 2);
        // Sorted by share vectors: [0,5,5] < [5,5,0], even though [5,5,0]
        // appears first in the records.
        assert_eq!(space[0], Partition::from_tenths(vec![0, 5, 5]));
        assert_eq!(space[1], Partition::from_tenths(vec![5, 5, 0]));
    }

    #[test]
    fn label_space_is_independent_of_record_order() {
        let forward = db();
        let mut reversed = db();
        reversed.records.reverse();
        assert_eq!(forward.label_space(), reversed.label_space());
    }

    #[test]
    fn to_dataset_builds_dense_labels_and_groups() {
        let (data, space) = db().to_dataset(FeatureSet::Both);
        assert_eq!(data.len(), 3);
        assert_eq!(data.dim(), 3); // 2 static + 1 runtime (test fixtures)
        assert_eq!(data.y, vec![1, 0, 1]);
        assert_eq!(data.groups, vec![0, 0, 1]);
        assert_eq!(space.len(), 2);
    }

    #[test]
    fn to_dataset_is_independent_of_record_order() {
        // Shuffle-proof datasets are what make shard merges and
        // re-collections train bit-identical predictors.
        let forward = db().to_dataset(FeatureSet::Both);
        let mut shuffled = db();
        shuffled.records.swap(0, 2);
        shuffled.records.swap(1, 2);
        assert_eq!(shuffled.to_dataset(FeatureSet::Both), forward);
    }

    #[test]
    fn canonicalize_sorts_and_ranks_program_indices() {
        let mut d = TrainingDb {
            machine: "mc1".into(),
            machine_fingerprint: machines::mc1().fingerprint(),
            records: vec![
                record("zeta", 0, 64, vec![5, 5, 0]),
                record("alpha", 1, 128, vec![0, 5, 5]),
                record("alpha", 1, 64, vec![0, 5, 5]),
            ],
        };
        d.canonicalize();
        let keys: Vec<(&str, usize, usize)> = d
            .records
            .iter()
            .map(|r| (r.program.as_str(), r.size, r.program_idx))
            .collect();
        assert_eq!(
            keys,
            vec![("alpha", 64, 0), ("alpha", 128, 0), ("zeta", 64, 1)]
        );
        assert_eq!(d.canonical_order(), vec![0, 1, 2]);
    }

    #[test]
    fn feature_sets_project_columns() {
        let r = record("a", 0, 64, vec![10, 0, 0]);
        assert_eq!(r.features(FeatureSet::StaticOnly), vec![1.0, 2.0]);
        assert_eq!(r.features(FeatureSet::RuntimeOnly), vec![3.0]);
        assert_eq!(r.features(FeatureSet::Both), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn feature_names_match_real_dims() {
        use hetpart_inspire::features::STATIC_FEATURE_DIM;
        use hetpart_runtime::RUNTIME_FEATURE_DIM;
        assert_eq!(
            feature_names(FeatureSet::StaticOnly).len(),
            STATIC_FEATURE_DIM
        );
        assert_eq!(
            feature_names(FeatureSet::RuntimeOnly).len(),
            RUNTIME_FEATURE_DIM
        );
        assert_eq!(
            feature_names(FeatureSet::Both).len(),
            STATIC_FEATURE_DIM + RUNTIME_FEATURE_DIM
        );
    }

    #[test]
    fn save_load_roundtrip_carries_the_schema_version() {
        let d = db();
        let dir = tmp_dir("hetpart_db_test");
        let path = dir.join("db.json");
        d.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"version\""));
        let back = TrainingDb::load(&path).unwrap();
        assert_eq!(d, back);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_rejects_missing_and_mismatched_schema_versions() {
        let dir = tmp_dir("hetpart_db_version_test");
        // Pre-versioning file shape (what PR 4 and earlier wrote).
        let legacy = dir.join("legacy.json");
        std::fs::write(&legacy, r#"{"machine": "mc1", "records": []}"#).unwrap();
        let err = TrainingDb::load(&legacy).unwrap_err();
        assert!(
            matches!(err, DbError::SchemaVersion { found: None, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("no schema version"), "{err}");

        let future = dir.join("future.json");
        std::fs::write(
            &future,
            format!(
                r#"{{"version": {}, "machine": "mc1", "records": []}}"#,
                DB_SCHEMA_VERSION + 1
            ),
        )
        .unwrap();
        let err = TrainingDb::load(&future).unwrap_err();
        assert!(matches!(
            err,
            DbError::SchemaVersion {
                found: Some(v), ..
            } if v == u64::from(DB_SCHEMA_VERSION) + 1
        ));
        assert!(err.to_string().contains("regenerate"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn shard_append_load_roundtrip() {
        let root = tmp_dir("hetpart_shard_roundtrip");
        let shards = ShardedDb::open(&root, &machines::mc1()).unwrap();
        let d = db();
        for r in &d.records {
            shards.append(r).unwrap();
        }
        assert_eq!(shards.programs().unwrap(), vec!["a", "b"]);
        assert_eq!(shards.load_shard("a").unwrap(), d.records[..2].to_vec());
        assert_eq!(shards.load_shard("b").unwrap(), d.records[2..].to_vec());
        let merged = shards.to_training_db().unwrap();
        assert_eq!(merged, d); // db() is already canonical
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn torn_final_line_is_dropped_and_resumable() {
        let root = tmp_dir("hetpart_shard_torn");
        let shards = ShardedDb::open(&root, &machines::mc1()).unwrap();
        let d = db();
        shards.append(&d.records[0]).unwrap();
        shards.append(&d.records[1]).unwrap();
        // Simulate a crash mid-append: chop the last line in half.
        let path = shards.shard_path("a");
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.len() - 40;
        std::fs::write(&path, &text[..keep]).unwrap();
        let records = shards.load_shard("a").unwrap();
        assert_eq!(records, vec![d.records[0].clone()]);
        let keys = shards.existing_keys().unwrap();
        assert!(keys.contains(&("a".to_string(), 64)));
        assert!(
            !keys.contains(&("a".to_string(), 128)),
            "torn record must be re-measured"
        );
        // Resuming appends over the torn tail repairs it: the fragment is
        // truncated away, the re-measured record lands cleanly.
        shards.append(&d.records[1]).unwrap();
        assert_eq!(shards.load_shard("a").unwrap(), d.records[..2].to_vec());

        // A torn tail whose prefix happens to be *complete valid JSON*
        // (the crash cut exactly between the record and its newline) must
        // also read as torn: `append`'s repair truncates it, so counting
        // it as measured would silently lose it from later merges.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.trim_end_matches('\n')).unwrap();
        assert_eq!(
            shards.load_shard("a").unwrap(),
            d.records[..1].to_vec(),
            "unterminated-but-parseable tail must be dropped, matching append's repair"
        );
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn newline_terminated_corrupt_tail_is_an_error_not_a_torn_append() {
        // `append` writes record + '\n' in one write, so a genuine crash
        // artifact never ends in a newline. A corrupt *terminated* final
        // line is external damage: a pure merge would silently lose the
        // measurement if it were forgiven.
        use std::io::Write as _;
        let root = tmp_dir("hetpart_shard_terminated_tail");
        let shards = ShardedDb::open(&root, &machines::mc1()).unwrap();
        shards.append(&db().records[0]).unwrap();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(shards.shard_path("a"))
            .unwrap();
        f.write_all(b"{garbled record}\n").unwrap();
        drop(f);
        let err = shards.load_shard("a").unwrap_err();
        assert!(matches!(err, DbError::Parse { .. }), "{err}");
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn config_marker_guards_resume_and_merge() {
        let root_a = tmp_dir("hetpart_shard_config_a");
        let root_b = tmp_dir("hetpart_shard_config_b");
        let a = ShardedDb::open(&root_a, &machines::mc1()).unwrap();
        // First run records, identical runs pass, a drifted run fails.
        a.check_or_record_config("step=5;samples=32").unwrap();
        a.check_or_record_config("step=5;samples=32").unwrap();
        let err = a.check_or_record_config("step=2;samples=16").unwrap_err();
        assert!(matches!(err, DbError::ConfigMismatch { .. }), "{err}");
        assert!(err.to_string().contains("incompatible"), "{err}");
        // The marker file is not mistaken for a program shard.
        assert!(a.programs().unwrap().is_empty());

        // Merging stores with disagreeing markers is refused too.
        let b = ShardedDb::open(&root_b, &machines::mc1()).unwrap();
        b.check_or_record_config("step=2;samples=16").unwrap();
        a.append(&db().records[0]).unwrap();
        b.append(&db().records[2]).unwrap();
        let err = ShardedDb::merge(&[&a, &b]).unwrap_err();
        assert!(matches!(err, DbError::ConfigMismatch { .. }), "{err}");
        std::fs::remove_dir_all(root_a).ok();
        std::fs::remove_dir_all(root_b).ok();
    }

    #[test]
    fn merging_zero_stores_is_an_error() {
        assert!(matches!(ShardedDb::merge(&[]), Err(DbError::NoShards)));
    }

    #[test]
    fn mid_file_corruption_is_a_loud_error() {
        // Only a *final* torn line is crash tolerance; junk between two
        // good lines is real corruption and must not be skipped silently.
        let root = tmp_dir("hetpart_shard_corrupt");
        let shards = ShardedDb::open(&root, &machines::mc1()).unwrap();
        let d = db();
        shards.append(&d.records[0]).unwrap();
        let path = shards.shard_path("a");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{this is not a record\n");
        std::fs::write(&path, text).unwrap();
        shards.append(&d.records[1]).unwrap();
        let err = shards.load_shard("a").unwrap_err();
        assert!(matches!(err, DbError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn crash_inside_the_first_append_still_resumes() {
        // A collector can die after creating the shard file but before —
        // or midway through — writing the header. Both must read as an
        // empty shard (so the resumed run re-measures and the next append
        // repairs the file), never as a permanent parse error.
        let root = tmp_dir("hetpart_shard_torn_header");
        let shards = ShardedDb::open(&root, &machines::mc1()).unwrap();
        let d = db();

        // Crash before any byte landed: empty file.
        std::fs::write(shards.shard_path("a"), "").unwrap();
        assert_eq!(shards.load_shard("a").unwrap(), Vec::new());
        assert!(shards.existing_keys().unwrap().is_empty());

        // Crash mid-header: an unterminated JSON fragment.
        std::fs::write(shards.shard_path("a"), "{\"version\": 2, \"mach").unwrap();
        assert_eq!(shards.load_shard("a").unwrap(), Vec::new());
        assert!(shards.existing_keys().unwrap().is_empty());

        // The next append repairs the file and the shard works normally.
        shards.append(&d.records[0]).unwrap();
        assert_eq!(shards.load_shard("a").unwrap(), vec![d.records[0].clone()]);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn shard_header_is_validated() {
        let root = tmp_dir("hetpart_shard_header");
        let shards = ShardedDb::open(&root, &machines::mc1()).unwrap();
        shards.append(&db().records[0]).unwrap();
        // A different machine's view of the same directory refuses it.
        let other = ShardedDb {
            dir: shards.dir().to_path_buf(),
            machine: "mc2".into(),
            machine_fingerprint: machines::mc2().fingerprint(),
        };
        let err = other.load_shard("a").unwrap_err();
        assert!(matches!(err, DbError::MachineMismatch { .. }), "{err}");
        // Same machine *name* but different hardware (profile drift under
        // an unchanged name) is refused with the fingerprint error.
        let drifted = ShardedDb {
            dir: shards.dir().to_path_buf(),
            machine: "mc1".into(),
            machine_fingerprint: machines::mc1().fingerprint() ^ 1,
        };
        let err = drifted.load_shard("a").unwrap_err();
        assert!(
            matches!(err, DbError::MachineFingerprintMismatch { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("device profiles changed"), "{err}");
        // A legacy shard without a version is named as such.
        let legacy = shards.shard_path("legacy");
        std::fs::write(&legacy, "{\"machine\": \"mc1\", \"program\": \"legacy\"}\n").unwrap();
        let err = shards.load_shard("legacy").unwrap_err();
        assert!(
            matches!(err, DbError::SchemaVersion { found: None, .. }),
            "{err}"
        );
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn merge_is_shard_order_independent_and_rejects_duplicates() {
        let root_a = tmp_dir("hetpart_shard_merge_a");
        let root_b = tmp_dir("hetpart_shard_merge_b");
        let a = ShardedDb::open(&root_a, &machines::mc1()).unwrap();
        let b = ShardedDb::open(&root_b, &machines::mc1()).unwrap();
        let d = db();
        a.append(&d.records[0]).unwrap();
        a.append(&d.records[1]).unwrap();
        b.append(&d.records[2]).unwrap();
        let ab = ShardedDb::merge(&[&a, &b]).unwrap();
        let ba = ShardedDb::merge(&[&b, &a]).unwrap();
        assert_eq!(ab, ba, "merge must not depend on shard order");
        assert_eq!(ab, d);
        // The same (program, size) in two roots is a loud error.
        b.append(&d.records[0]).unwrap();
        let err = ShardedDb::merge(&[&a, &b]).unwrap_err();
        assert!(matches!(err, DbError::DuplicateRecord { .. }), "{err}");
        // So is mixing machines.
        let c = ShardedDb::open(&root_b, &machines::mc2()).unwrap();
        let err = ShardedDb::merge(&[&a, &c]).unwrap_err();
        assert!(matches!(err, DbError::MachineMismatch { .. }), "{err}");
        std::fs::remove_dir_all(root_a).ok();
        std::fs::remove_dir_all(root_b).ok();
    }

    #[test]
    fn indexed_label_space_stays_fast_on_large_dbs() {
        // Guard against reintroducing the O(records x classes) linear
        // scans: a database with thousands of records over a wide label
        // space must build its dataset in well under a second.
        let space = Partition::enumerate(3, 1); // 66 classes
        let records: Vec<TrainingRecord> = (0..20_000)
            .map(|i| {
                let mut r = record(
                    &format!("p{:03}", i % 23),
                    i % 23,
                    1 << (6 + (i % 8)),
                    vec![10, 0, 0],
                );
                r.sweep.entries[0].partition = space[i % space.len()].clone();
                r.sweep.entries[0].time = 0.5;
                r
            })
            .collect();
        let big = TrainingDb {
            machine: "mc1".into(),
            machine_fingerprint: machines::mc1().fingerprint(),
            records,
        };
        let t = std::time::Instant::now();
        let (data, labels) = big.to_dataset(FeatureSet::Both);
        assert_eq!(data.len(), 20_000);
        assert_eq!(labels.len(), space.len());
        assert!(
            t.elapsed().as_secs_f64() < 2.0,
            "to_dataset took {:?} on 20k records — quadratic scan regression?",
            t.elapsed()
        );
    }
}
