//! The training phase: run every benchmark at every problem size under
//! every partitioning on a machine, and collect features + measurements.

use hetpart_runtime::{runtime_features, sweep_partitions, Executor, Launch};
use hetpart_oclsim::Machine;
use hetpart_suite::Benchmark;
use rayon::prelude::*;

use crate::config::HarnessConfig;
use crate::db::{TrainingDb, TrainingRecord};

/// Collect the full training database for one machine.
///
/// Parallelizes over (benchmark, size) pairs with rayon; each pair
/// compiles the kernel, builds the instance, extracts runtime features and
/// sweeps the partition space in simulation (no buffers are mutated).
///
/// # Panics
/// Panics if a bundled benchmark fails to compile or execute — the suite's
/// own tests guarantee both, so a failure here is a bug.
pub fn collect_training_db(
    machine: &Machine,
    benchmarks: &[Benchmark],
    cfg: &HarnessConfig,
) -> TrainingDb {
    let executor = Executor { machine: machine.clone(), sample_items: cfg.sample_items };

    let work: Vec<(usize, &Benchmark, usize)> = benchmarks
        .iter()
        .enumerate()
        .flat_map(|(idx, b)| {
            cfg.select_sizes(b).into_iter().map(move |n| (idx, b, n))
        })
        .collect();

    let mut records: Vec<TrainingRecord> = work
        .par_iter()
        .map(|&(program_idx, bench, size)| {
            let kernel = bench.compile();
            let inst = bench.instance(size);
            let rt = runtime_features(
                &kernel,
                &inst.nd,
                &inst.args,
                &inst.bufs,
                cfg.sample_items,
            )
            .unwrap_or_else(|e| panic!("{}: runtime features failed: {e}", bench.name));
            let launch = Launch::new(&kernel, inst.nd.clone(), inst.args.clone());
            let sweep = sweep_partitions(&executor, &launch, &inst.bufs, cfg.step_tenths)
                .unwrap_or_else(|e| panic!("{}: sweep failed: {e}", bench.name));
            TrainingRecord {
                program: bench.name.to_string(),
                program_idx,
                size,
                static_features: kernel.static_features.to_vec(),
                runtime_features: rt.to_vec(),
                sweep,
            }
        })
        .collect();

    // Deterministic order regardless of rayon scheduling.
    records.sort_by_key(|r| (r.program_idx, r.size));
    TrainingDb { machine: machine.name.clone(), records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpart_oclsim::machines;
    use hetpart_runtime::Partition;

    fn tiny_cfg() -> HarnessConfig {
        HarnessConfig {
            sizes_per_benchmark: 2,
            sample_items: 32,
            step_tenths: 5,
            ..HarnessConfig::quick()
        }
    }

    #[test]
    fn collects_records_for_each_benchmark_and_size() {
        let benches: Vec<_> = hetpart_suite::all().into_iter().take(3).collect();
        let db = collect_training_db(&machines::mc1(), &benches, &tiny_cfg());
        assert_eq!(db.machine, "mc1");
        assert_eq!(db.records.len(), 3 * 2);
        for r in &db.records {
            assert_eq!(r.sweep.entries.len(), 6, "step=5 space has 6 partitions");
            assert!(!r.static_features.is_empty());
            assert!(!r.runtime_features.is_empty());
            assert!(r.best().time > 0.0);
        }
    }

    #[test]
    fn records_are_sorted_and_grouped() {
        let benches: Vec<_> = hetpart_suite::all().into_iter().take(2).collect();
        let db = collect_training_db(&machines::mc2(), &benches, &tiny_cfg());
        let keys: Vec<(usize, usize)> =
            db.records.iter().map(|r| (r.program_idx, r.size)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn best_partition_varies_across_the_db() {
        // With a diverse suite and sizes, the oracle should not pick the
        // same partitioning for everything (the paper's premise).
        let benches: Vec<_> = hetpart_suite::all()
            .into_iter()
            .filter(|b| ["vec_add", "nbody", "sgemm", "blackscholes"].contains(&b.name))
            .collect();
        let cfg = HarnessConfig {
            sizes_per_benchmark: 3,
            ..tiny_cfg()
        };
        let db = collect_training_db(&machines::mc2(), &benches, &cfg);
        let bests: Vec<Partition> =
            db.records.iter().map(|r| r.best().partition.clone()).collect();
        let mut distinct = bests.clone();
        distinct.sort();
        distinct.dedup();
        assert!(
            distinct.len() >= 2,
            "expected multiple optimal partitionings, got only {:?}",
            distinct
        );
    }
}
