//! The training phase: run every benchmark at every problem size under
//! every partitioning on a machine, and collect features + measurements.

use std::fmt;

use hetpart_inspire::{CompiledKernel, VmError};
use hetpart_oclsim::Machine;
use hetpart_runtime::{
    runtime_features, sweep_many_mode, sweep_partitions_mode, Executor, Launch, RuntimeFeatures,
    SweepJob,
};
use hetpart_suite::{Benchmark, Instance};
use rayon::prelude::*;

use crate::config::HarnessConfig;
use crate::db::{DbError, ShardedDb, TrainingDb, TrainingRecord};

/// Why the training phase failed, naming the (benchmark, size) that broke
/// instead of panicking inside a rayon worker (which used to abort the
/// whole process with a backtrace pointing at the thread pool, not the
/// offending launch).
#[derive(Debug)]
pub enum TrainError {
    /// Runtime-feature collection failed for one launch.
    Features {
        benchmark: String,
        size: usize,
        source: VmError,
    },
    /// The oracle sweep failed for one launch.
    Sweep {
        benchmark: String,
        size: usize,
        source: VmError,
    },
    /// A whole sweep batch failed but no individual launch reproduces it —
    /// a bug in the batching layer itself.
    Batch { source: VmError },
    /// Reading from or appending to the shard store failed.
    Shard(DbError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Features {
                benchmark,
                size,
                source,
            } => write!(
                f,
                "{benchmark} (n = {size}): runtime features failed: {source}"
            ),
            TrainError::Sweep {
                benchmark,
                size,
                source,
            } => write!(f, "{benchmark} (n = {size}): sweep failed: {source}"),
            TrainError::Batch { source } => {
                write!(
                    f,
                    "batched training sweep failed (no single launch reproduces it): {source}"
                )
            }
            TrainError::Shard(e) => write!(f, "training shard store: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Features { source, .. }
            | TrainError::Sweep { source, .. }
            | TrainError::Batch { source } => Some(source),
            TrainError::Shard(e) => Some(e),
        }
    }
}

impl From<DbError> for TrainError {
    fn from(e: DbError) -> Self {
        TrainError::Shard(e)
    }
}

/// How many (benchmark, size) launches each [`sweep_many`] call batches.
///
/// Bounds peak memory: every job in flight holds a full benchmark
/// instance (input + output buffers, tens of MB at the top of a paper
/// size ladder), so an unbounded batch over the whole suite could reach
/// gigabytes. 32 jobs keep a few times the worker-thread count in
/// flight — enough that both sweep phases stay saturated (a batch spans
/// 32 × |space| pricing units) — while capping live buffers.
///
/// [`sweep_many`]: hetpart_runtime::sweep_many
const SWEEP_BATCH_JOBS: usize = 32;

/// Collect the full training database for one machine.
///
/// The suite trains as **batched sweeps**: every benchmark is compiled
/// exactly once (shared across all of its problem sizes), then
/// (benchmark, size) pairs stream through [`sweep_many_mode`] in groups
/// of [`SWEEP_BATCH_JOBS`] — instances and runtime features prepared in
/// parallel, every (launch × partitioning) pair of the group priced in
/// one flat rayon pass with per-launch access-analysis caches. No
/// buffers are mutated, and batch boundaries cannot affect results
/// (batched sweeps are bit-identical to sequential ones).
///
/// With `cfg.sweep_mode == SweepMode::Pruned` the oracle runs the
/// branch-and-bound sweep instead: each record's `best()` (the training
/// label) and the default-strategy baselines are bit-identical to the
/// full sweep, but the stored sweeps contain only the priced subset of
/// the partition space — use `Full` when downstream consumers (e.g. the
/// evaluation harness) must price arbitrary partitions.
///
/// The returned database is canonical ([`TrainingDb::canonicalize`]):
/// records sorted by (program, size), `program_idx` ranked by program
/// name — independent of the order of `benchmarks`.
///
/// A failing launch returns a [`TrainError`] naming the benchmark and
/// problem size (it used to panic inside a rayon worker).
pub fn collect_training_db(
    machine: &Machine,
    benchmarks: &[Benchmark],
    cfg: &HarnessConfig,
) -> Result<TrainingDb, TrainError> {
    let records = collect_into(machine, benchmarks, cfg, None, &Default::default())?;
    Ok(canonical_db(machine, records))
}

/// [`collect_training_db`] with **streaming JSONL persistence and crash
/// resume**: every measured record is appended to its (machine, program)
/// shard as soon as its batch completes, and (program, size) pairs
/// already present in the shards are skipped, so an interrupted run
/// resumes where it stopped instead of restarting. A torn final line
/// (crash mid-append) is dropped by the shard loader and re-measured
/// here.
///
/// Returns the canonical [`TrainingDb`] for exactly the requested
/// (benchmark, size) set — loading what the shards already hold and
/// measuring the rest — **bit-identical to a single
/// [`collect_training_db`] run over the same benchmarks**. Records an
/// earlier run left in the store beyond the requested set stay on disk
/// (visible to [`ShardedDb::merge`]) but are excluded from the returned
/// view.
///
/// # Panics
/// Panics if `shards` belongs to a different machine than `machine` —
/// mixing measurements across machines is a programming error, not a
/// runtime condition.
pub fn collect_training_db_sharded(
    machine: &Machine,
    benchmarks: &[Benchmark],
    cfg: &HarnessConfig,
    shards: &ShardedDb,
) -> Result<TrainingDb, TrainError> {
    assert_eq!(
        shards.machine(),
        machine.name,
        "shard store belongs to a different machine"
    );
    assert_eq!(
        shards.machine_fingerprint(),
        machine.fingerprint(),
        "shard store belongs to a machine of the same name but different hardware"
    );
    // Refuse to resume a store collected under different oracle settings
    // (sweep granularity, sample count, sweep mode) — the records would
    // not be comparable. First run records the fingerprint.
    shards.check_or_record_config(&cfg.oracle_fingerprint())?;
    // The (program, size) set this run is asked for. A reused store may
    // hold more (an earlier run over a larger suite or size ladder);
    // those records stay on disk — available to `ShardedDb::merge` — but
    // are excluded from the returned view, which must equal a
    // `collect_training_db` run over exactly `benchmarks`.
    let requested: std::collections::HashSet<(String, usize)> = benchmarks
        .iter()
        .flat_map(|b| {
            cfg.select_sizes(b)
                .into_iter()
                .map(move |n| (b.name.to_string(), n))
        })
        .collect();
    // One pass over the shard files: the already-measured records double
    // as the resume set and the head of the merged result (re-reading
    // every shard after collection would parse the whole store twice).
    let mut records: Vec<TrainingRecord> = Vec::new();
    let mut done: std::collections::HashSet<(String, usize)> = Default::default();
    for program in shards.programs()? {
        for r in shards.load_shard(&program)? {
            if !done.insert((r.program.clone(), r.size)) {
                return Err(DbError::DuplicateRecord {
                    program: r.program,
                    size: r.size,
                }
                .into());
            }
            if requested.contains(&(r.program.clone(), r.size)) {
                records.push(r);
            }
        }
    }
    records.extend(collect_into(machine, benchmarks, cfg, Some(shards), &done)?);
    Ok(canonical_db(machine, records))
}

fn canonical_db(machine: &Machine, records: Vec<TrainingRecord>) -> TrainingDb {
    let mut db = TrainingDb {
        machine: machine.name.clone(),
        machine_fingerprint: machine.fingerprint(),
        records,
    };
    db.canonicalize();
    db
}

/// Measure every (benchmark, size) pair not in `done`, appending each
/// finished batch to `shards` when given, and return the new records in
/// measurement order (callers canonicalize).
fn collect_into(
    machine: &Machine,
    benchmarks: &[Benchmark],
    cfg: &HarnessConfig,
    shards: Option<&ShardedDb>,
    done: &std::collections::HashSet<(String, usize)>,
) -> Result<Vec<TrainingRecord>, TrainError> {
    let executor = Executor {
        sample_items: cfg.sample_items,
        ..Executor::new(machine.clone())
    };

    // Compiled-kernel cache: one compile per benchmark, shared by every
    // problem size's launch below.
    let kernels: Vec<CompiledKernel> = benchmarks
        .par_iter()
        .map(|bench| bench.compile_with_modes(cfg.opt_level, cfg.regalloc))
        .collect();

    let work: Vec<(usize, usize)> = benchmarks
        .iter()
        .enumerate()
        .flat_map(|(idx, b)| cfg.select_sizes(b).into_iter().map(move |n| (idx, n)))
        .filter(|&(idx, n)| !done.contains(&(benchmarks[idx].name.to_string(), n)))
        .collect();

    let mut records: Vec<TrainingRecord> = Vec::with_capacity(work.len());
    for group in work.chunks(SWEEP_BATCH_JOBS) {
        // Instances + runtime features, in parallel over (benchmark, size).
        let prepared: Vec<(Instance, RuntimeFeatures)> = group
            .par_iter()
            .map(|&(program_idx, size)| {
                let bench = &benchmarks[program_idx];
                let inst = bench.instance(size);
                let rt = runtime_features(
                    &kernels[program_idx],
                    &inst.nd,
                    &inst.args,
                    &inst.bufs,
                    cfg.sample_items,
                )
                .map_err(|source| TrainError::Features {
                    benchmark: bench.name.to_string(),
                    size,
                    source,
                })?;
                Ok((inst, rt))
            })
            .collect::<Vec<Result<_, TrainError>>>()
            .into_iter()
            .collect::<Result<_, _>>()?;

        // One batched oracle sweep over the group.
        let launches: Vec<Launch> = group
            .iter()
            .zip(&prepared)
            .map(|(&(program_idx, _), (inst, _))| {
                Launch::new(&kernels[program_idx], inst.nd.clone(), inst.args.clone())
            })
            .collect();
        let jobs: Vec<SweepJob> = launches
            .iter()
            .zip(&prepared)
            .map(|(launch, (inst, _))| SweepJob {
                launch,
                bufs: &inst.bufs,
                step_tenths: cfg.step_tenths,
            })
            .collect();
        let sweeps = sweep_many_mode(&executor, &jobs, cfg.sweep_mode).map_err(|batch_err| {
            // Localize which launch of the batch failed so the error names
            // the benchmark and size instead of a 32-job group.
            for (job, &(program_idx, size)) in jobs.iter().zip(group) {
                if let Err(source) = sweep_partitions_mode(
                    &executor,
                    job.launch,
                    job.bufs,
                    job.step_tenths,
                    cfg.sweep_mode,
                ) {
                    return TrainError::Sweep {
                        benchmark: benchmarks[program_idx].name.to_string(),
                        size,
                        source,
                    };
                }
            }
            TrainError::Batch { source: batch_err }
        })?;

        let batch: Vec<TrainingRecord> = group
            .iter()
            .zip(prepared)
            .zip(sweeps)
            .map(|((&(program_idx, size), (_, rt)), sweep)| TrainingRecord {
                program: benchmarks[program_idx].name.to_string(),
                program_idx,
                size,
                static_features: kernels[program_idx].static_features.to_vec(),
                runtime_features: rt.to_vec(),
                sweep,
            })
            .collect();
        // Stream the finished batch into the shard store before measuring
        // the next one: a crash from here on resumes after this batch.
        if let Some(s) = shards {
            for r in &batch {
                s.append(r)?;
            }
        }
        records.extend(batch);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpart_oclsim::machines;
    use hetpart_runtime::Partition;

    fn tiny_cfg() -> HarnessConfig {
        HarnessConfig {
            sizes_per_benchmark: 2,
            sample_items: 32,
            step_tenths: 5,
            ..HarnessConfig::quick()
        }
    }

    #[test]
    fn collects_records_for_each_benchmark_and_size() {
        let benches: Vec<_> = hetpart_suite::all().into_iter().take(3).collect();
        let db = collect_training_db(&machines::mc1(), &benches, &tiny_cfg()).unwrap();
        assert_eq!(db.machine, "mc1");
        assert_eq!(db.records.len(), 3 * 2);
        for r in &db.records {
            assert_eq!(r.sweep.entries.len(), 6, "step=5 space has 6 partitions");
            assert!(!r.static_features.is_empty());
            assert!(!r.runtime_features.is_empty());
            assert!(r.best().time > 0.0);
        }
    }

    #[test]
    fn records_are_canonical_sorted_and_ranked() {
        let benches: Vec<_> = hetpart_suite::all().into_iter().take(2).collect();
        let db = collect_training_db(&machines::mc2(), &benches, &tiny_cfg()).unwrap();
        let keys: Vec<(String, usize)> = db
            .records
            .iter()
            .map(|r| (r.program.clone(), r.size))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "records sort by (program, size)");
        // program_idx is the rank of the name, not the slice position.
        for r in &db.records {
            let rank = db
                .records
                .iter()
                .map(|o| o.program.as_str())
                .filter(|&n| n < r.program.as_str())
                .collect::<std::collections::BTreeSet<_>>()
                .len();
            assert_eq!(r.program_idx, rank, "{}", r.program);
        }
    }

    #[test]
    fn benchmark_order_does_not_change_the_database() {
        // The canonical form makes collection independent of the order the
        // benchmark slice happens to arrive in — a precondition for
        // shard merges being bit-identical to monolithic collection.
        let mut benches: Vec<_> = hetpart_suite::all().into_iter().take(3).collect();
        let forward = collect_training_db(&machines::mc1(), &benches, &tiny_cfg()).unwrap();
        benches.reverse();
        let reversed = collect_training_db(&machines::mc1(), &benches, &tiny_cfg()).unwrap();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn pruned_training_oracle_is_label_exact() {
        // The paper's labels are the oracle argmins; the branch-and-bound
        // oracle must reproduce every one of them bit for bit, along with
        // the default-strategy baselines.
        let benches: Vec<_> = hetpart_suite::all().into_iter().take(4).collect();
        let full_cfg = HarnessConfig {
            step_tenths: 1,
            ..tiny_cfg()
        };
        let pruned_cfg = HarnessConfig {
            sweep_mode: hetpart_runtime::SweepMode::Pruned,
            ..full_cfg.clone()
        };
        let machine = machines::mc2();
        let full = collect_training_db(&machine, &benches, &full_cfg).unwrap();
        let pruned = collect_training_db(&machine, &benches, &pruned_cfg).unwrap();
        assert_eq!(full.records.len(), pruned.records.len());
        for (f, p) in full.records.iter().zip(&pruned.records) {
            assert_eq!((f.program_idx, f.size), (p.program_idx, p.size));
            assert_eq!(
                f.best().partition,
                p.best().partition,
                "{} n={}: label must survive pruning",
                f.program,
                f.size
            );
            assert_eq!(f.best().time.to_bits(), p.best().time.to_bits());
            assert_eq!(
                f.sweep.cpu_only_time().to_bits(),
                p.sweep.cpu_only_time().to_bits()
            );
            assert_eq!(
                f.sweep.gpu_only_time().to_bits(),
                p.sweep.gpu_only_time().to_bits()
            );
            assert!(p.sweep.entries.len() <= f.sweep.entries.len());
            // Features are oracle-independent.
            assert_eq!(f.runtime_features, p.runtime_features);
        }
        assert_eq!(full.label_space(), pruned.label_space());
    }

    #[test]
    fn failing_launch_is_a_named_error_not_a_panic() {
        // Regression: a faulting launch used to panic inside a rayon
        // worker, aborting the whole training run with a backtrace that
        // pointed at the thread pool. It must surface as a `TrainError`
        // naming the (benchmark, size) instead.
        use hetpart_inspire::vm::{ArgValue, BufferData};
        use hetpart_inspire::NdRange;

        fn oob_setup(n: usize, _seed: u64) -> Instance {
            Instance {
                nd: NdRange::d1(n),
                args: vec![
                    ArgValue::Buffer(0),
                    ArgValue::Buffer(1),
                    ArgValue::Int(n as i32),
                ],
                bufs: vec![BufferData::F32(vec![1.0; n]), BufferData::F32(vec![0.0; n])],
                outputs: vec![1],
            }
        }
        fn no_reference(_: &Instance) -> Vec<(usize, BufferData)> {
            Vec::new()
        }
        let broken = Benchmark {
            name: "oob_probe",
            origin: "test",
            description: "reads past the end of its input",
            // Valid source, faults at runtime: a[i + n] is out of bounds
            // for every work item.
            source: "kernel void oob(global const float* a, global float* o, int n) {
                int i = get_global_id(0);
                o[i] = a[i + n];
            }",
            sizes: &[64],
            setup: oob_setup,
            reference: no_reference,
        };
        let good = hetpart_suite::by_name("vec_add").unwrap();
        let err = collect_training_db(&machines::mc1(), &[good, broken], &tiny_cfg()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("oob_probe") && msg.contains("64"),
            "error must name the failing (benchmark, size): {msg}"
        );
        assert!(
            matches!(
                err,
                TrainError::Features { ref benchmark, size: 64, .. }
                    | TrainError::Sweep { ref benchmark, size: 64, .. }
                    if benchmark == "oob_probe"
            ),
            "{err:?}"
        );
    }

    #[test]
    fn best_partition_varies_across_the_db() {
        // With a diverse suite and sizes, the oracle should not pick the
        // same partitioning for everything (the paper's premise).
        let benches: Vec<_> = hetpart_suite::all()
            .into_iter()
            .filter(|b| ["vec_add", "nbody", "sgemm", "blackscholes"].contains(&b.name))
            .collect();
        let cfg = HarnessConfig {
            sizes_per_benchmark: 3,
            ..tiny_cfg()
        };
        let db = collect_training_db(&machines::mc2(), &benches, &cfg).unwrap();
        let bests: Vec<Partition> = db
            .records
            .iter()
            .map(|r| r.best().partition.clone())
            .collect();
        let mut distinct = bests.clone();
        distinct.sort();
        distinct.dedup();
        assert!(
            distinct.len() >= 2,
            "expected multiple optimal partitionings, got only {:?}",
            distinct
        );
    }
}
