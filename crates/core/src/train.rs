//! The training phase: run every benchmark at every problem size under
//! every partitioning on a machine, and collect features + measurements.

use hetpart_inspire::CompiledKernel;
use hetpart_oclsim::Machine;
use hetpart_runtime::{
    runtime_features, sweep_many_mode, sweep_partitions_mode, Executor, Launch, RuntimeFeatures,
    SweepJob,
};
use hetpart_suite::{Benchmark, Instance};
use rayon::prelude::*;

use crate::config::HarnessConfig;
use crate::db::{TrainingDb, TrainingRecord};

/// How many (benchmark, size) launches each [`sweep_many`] call batches.
///
/// Bounds peak memory: every job in flight holds a full benchmark
/// instance (input + output buffers, tens of MB at the top of a paper
/// size ladder), so an unbounded batch over the whole suite could reach
/// gigabytes. 32 jobs keep a few times the worker-thread count in
/// flight — enough that both sweep phases stay saturated (a batch spans
/// 32 × |space| pricing units) — while capping live buffers.
const SWEEP_BATCH_JOBS: usize = 32;

/// Collect the full training database for one machine.
///
/// The suite trains as **batched sweeps**: every benchmark is compiled
/// exactly once (shared across all of its problem sizes), then
/// (benchmark, size) pairs stream through [`sweep_many_mode`] in groups
/// of [`SWEEP_BATCH_JOBS`] — instances and runtime features prepared in
/// parallel, every (launch × partitioning) pair of the group priced in
/// one flat rayon pass with per-launch access-analysis caches. No
/// buffers are mutated, and batch boundaries cannot affect results
/// (batched sweeps are bit-identical to sequential ones).
///
/// With `cfg.sweep_mode == SweepMode::Pruned` the oracle runs the
/// branch-and-bound sweep instead: each record's `best()` (the training
/// label) and the default-strategy baselines are bit-identical to the
/// full sweep, but the stored sweeps contain only the priced subset of
/// the partition space — use `Full` when downstream consumers (e.g. the
/// evaluation harness) must price arbitrary partitions.
///
/// # Panics
/// Panics if a bundled benchmark fails to compile or execute — the suite's
/// own tests guarantee both, so a failure here is a bug.
pub fn collect_training_db(
    machine: &Machine,
    benchmarks: &[Benchmark],
    cfg: &HarnessConfig,
) -> TrainingDb {
    let executor = Executor {
        sample_items: cfg.sample_items,
        ..Executor::new(machine.clone())
    };

    // Compiled-kernel cache: one compile per benchmark, shared by every
    // problem size's launch below.
    let kernels: Vec<CompiledKernel> = benchmarks.par_iter().map(|bench| bench.compile()).collect();

    let work: Vec<(usize, usize)> = benchmarks
        .iter()
        .enumerate()
        .flat_map(|(idx, b)| cfg.select_sizes(b).into_iter().map(move |n| (idx, n)))
        .collect();

    let mut records: Vec<TrainingRecord> = Vec::with_capacity(work.len());
    for group in work.chunks(SWEEP_BATCH_JOBS) {
        // Instances + runtime features, in parallel over (benchmark, size).
        let prepared: Vec<(Instance, RuntimeFeatures)> = group
            .par_iter()
            .map(|&(program_idx, size)| {
                let bench = &benchmarks[program_idx];
                let inst = bench.instance(size);
                let rt = runtime_features(
                    &kernels[program_idx],
                    &inst.nd,
                    &inst.args,
                    &inst.bufs,
                    cfg.sample_items,
                )
                .unwrap_or_else(|e| panic!("{}: runtime features failed: {e}", bench.name));
                (inst, rt)
            })
            .collect();

        // One batched oracle sweep over the group.
        let launches: Vec<Launch> = group
            .iter()
            .zip(&prepared)
            .map(|(&(program_idx, _), (inst, _))| {
                Launch::new(&kernels[program_idx], inst.nd.clone(), inst.args.clone())
            })
            .collect();
        let jobs: Vec<SweepJob> = launches
            .iter()
            .zip(&prepared)
            .map(|(launch, (inst, _))| SweepJob {
                launch,
                bufs: &inst.bufs,
                step_tenths: cfg.step_tenths,
            })
            .collect();
        let sweeps =
            sweep_many_mode(&executor, &jobs, cfg.sweep_mode).unwrap_or_else(|batch_err| {
                // Localize which launch of the batch failed so the panic names
                // the benchmark and size instead of a 32-job group.
                for (job, &(program_idx, size)) in jobs.iter().zip(group) {
                    if let Err(e) = sweep_partitions_mode(
                        &executor,
                        job.launch,
                        job.bufs,
                        job.step_tenths,
                        cfg.sweep_mode,
                    ) {
                        panic!(
                            "{} (n = {size}): sweep failed: {e}",
                            benchmarks[program_idx].name
                        );
                    }
                }
                panic!("batched training sweep failed: {batch_err}");
            });

        records.extend(group.iter().zip(prepared).zip(sweeps).map(
            |((&(program_idx, size), (_, rt)), sweep)| TrainingRecord {
                program: benchmarks[program_idx].name.to_string(),
                program_idx,
                size,
                static_features: kernels[program_idx].static_features.to_vec(),
                runtime_features: rt.to_vec(),
                sweep,
            },
        ));
    }

    // Deterministic order regardless of batch construction.
    records.sort_by_key(|r| (r.program_idx, r.size));
    TrainingDb {
        machine: machine.name.clone(),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpart_oclsim::machines;
    use hetpart_runtime::Partition;

    fn tiny_cfg() -> HarnessConfig {
        HarnessConfig {
            sizes_per_benchmark: 2,
            sample_items: 32,
            step_tenths: 5,
            ..HarnessConfig::quick()
        }
    }

    #[test]
    fn collects_records_for_each_benchmark_and_size() {
        let benches: Vec<_> = hetpart_suite::all().into_iter().take(3).collect();
        let db = collect_training_db(&machines::mc1(), &benches, &tiny_cfg());
        assert_eq!(db.machine, "mc1");
        assert_eq!(db.records.len(), 3 * 2);
        for r in &db.records {
            assert_eq!(r.sweep.entries.len(), 6, "step=5 space has 6 partitions");
            assert!(!r.static_features.is_empty());
            assert!(!r.runtime_features.is_empty());
            assert!(r.best().time > 0.0);
        }
    }

    #[test]
    fn records_are_sorted_and_grouped() {
        let benches: Vec<_> = hetpart_suite::all().into_iter().take(2).collect();
        let db = collect_training_db(&machines::mc2(), &benches, &tiny_cfg());
        let keys: Vec<(usize, usize)> =
            db.records.iter().map(|r| (r.program_idx, r.size)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn pruned_training_oracle_is_label_exact() {
        // The paper's labels are the oracle argmins; the branch-and-bound
        // oracle must reproduce every one of them bit for bit, along with
        // the default-strategy baselines.
        let benches: Vec<_> = hetpart_suite::all().into_iter().take(4).collect();
        let full_cfg = HarnessConfig {
            step_tenths: 1,
            ..tiny_cfg()
        };
        let pruned_cfg = HarnessConfig {
            sweep_mode: hetpart_runtime::SweepMode::Pruned,
            ..full_cfg.clone()
        };
        let machine = machines::mc2();
        let full = collect_training_db(&machine, &benches, &full_cfg);
        let pruned = collect_training_db(&machine, &benches, &pruned_cfg);
        assert_eq!(full.records.len(), pruned.records.len());
        for (f, p) in full.records.iter().zip(&pruned.records) {
            assert_eq!((f.program_idx, f.size), (p.program_idx, p.size));
            assert_eq!(
                f.best().partition,
                p.best().partition,
                "{} n={}: label must survive pruning",
                f.program,
                f.size
            );
            assert_eq!(f.best().time.to_bits(), p.best().time.to_bits());
            assert_eq!(
                f.sweep.cpu_only_time().to_bits(),
                p.sweep.cpu_only_time().to_bits()
            );
            assert_eq!(
                f.sweep.gpu_only_time().to_bits(),
                p.sweep.gpu_only_time().to_bits()
            );
            assert!(p.sweep.entries.len() <= f.sweep.entries.len());
            // Features are oracle-independent.
            assert_eq!(f.runtime_features, p.runtime_features);
        }
        assert_eq!(full.label_space(), pruned.label_space());
    }

    #[test]
    fn best_partition_varies_across_the_db() {
        // With a diverse suite and sizes, the oracle should not pick the
        // same partitioning for everything (the paper's premise).
        let benches: Vec<_> = hetpart_suite::all()
            .into_iter()
            .filter(|b| ["vec_add", "nbody", "sgemm", "blackscholes"].contains(&b.name))
            .collect();
        let cfg = HarnessConfig {
            sizes_per_benchmark: 3,
            ..tiny_cfg()
        };
        let db = collect_training_db(&machines::mc2(), &benches, &cfg);
        let bests: Vec<Partition> = db
            .records
            .iter()
            .map(|r| r.best().partition.clone())
            .collect();
        let mut distinct = bests.clone();
        distinct.sort();
        distinct.dedup();
        assert!(
            distinct.len() >= 2,
            "expected multiple optimal partitionings, got only {:?}",
            distinct
        );
    }
}
