//! Harness configuration shared by training and evaluation.

use hetpart_inspire::{OptLevel, RegAlloc};
use hetpart_ml::{MlpConfig, ModelConfig};
use hetpart_oclsim::{machines, Machine};
use hetpart_runtime::SweepMode;
use hetpart_suite::Benchmark;

/// How much of each benchmark's size ladder and partition space to cover.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Target machines to evaluate (the paper uses `mc1` and `mc2`).
    pub machines: Vec<Machine>,
    /// Partition-space granularity in tenths (1 = the paper's 10% steps).
    pub step_tenths: u8,
    /// How the training oracle covers the partition space. `Full` prices
    /// everything (required when the records must price arbitrary
    /// partitions, e.g. for the evaluation harness); `Pruned` uses the
    /// oracle-exact branch-and-bound sweep and stores only the priced
    /// subset (argmin + baselines guaranteed).
    pub sweep_mode: SweepMode,
    /// Work-items sampled per chunk when estimating dynamic behaviour.
    pub sample_items: usize,
    /// Problem sizes used per benchmark (evenly spaced picks from the
    /// ladder; `usize::MAX` = the full ladder).
    pub sizes_per_benchmark: usize,
    /// Bytecode optimization level used when compiling kernels. Shapes
    /// the bytecode (and therefore simulated times and oracle labels), so
    /// it participates in [`HarnessConfig::oracle_fingerprint`].
    pub opt_level: OptLevel,
    /// Backend register-allocation + pre-decode tier. Renaming registers
    /// keeps the dynamic behaviour bit-identical, but it rewrites the
    /// bytecode (and the kernel fingerprints the prediction cache keys
    /// on), so it participates in [`HarnessConfig::oracle_fingerprint`].
    pub regalloc: RegAlloc,
    /// The prediction model.
    pub model: ModelConfig,
    /// Global seed.
    pub seed: u64,
}

impl HarnessConfig {
    /// The paper's configuration: both machines, 10% steps, full ladders,
    /// ANN model.
    pub fn paper() -> Self {
        Self {
            machines: machines::paper_machines(),
            step_tenths: 1,
            sweep_mode: SweepMode::Full,
            sample_items: 128,
            sizes_per_benchmark: usize::MAX,
            opt_level: OptLevel::from_env(),
            regalloc: RegAlloc::from_env(),
            model: ModelConfig::Mlp(MlpConfig::default()),
            seed: 0xC0FFEE,
        }
    }

    /// A reduced configuration for unit tests and smoke runs: coarser
    /// partition space, fewer sizes, smaller samples.
    pub fn quick() -> Self {
        Self {
            machines: machines::paper_machines(),
            step_tenths: 2,
            sweep_mode: SweepMode::Full,
            sample_items: 48,
            sizes_per_benchmark: 3,
            opt_level: OptLevel::from_env(),
            regalloc: RegAlloc::from_env(),
            model: ModelConfig::Mlp(MlpConfig {
                hidden: vec![16],
                epochs: 120,
                ..MlpConfig::default()
            }),
            seed: 0xC0FFEE,
        }
    }

    /// Evenly spaced picks from a benchmark's size ladder.
    pub fn select_sizes(&self, bench: &Benchmark) -> Vec<usize> {
        select_evenly(bench.sizes, self.sizes_per_benchmark)
    }

    /// The measurement-affecting subset of the config as a stable string:
    /// two (program, size) records are only comparable when these agree,
    /// so shard stores refuse to resume or merge across different
    /// fingerprints. The model, seed, machine list and size selection
    /// don't change what a given record *contains* and are excluded; the
    /// opt level is included because it shapes the compiled bytecode and
    /// through it every simulated time and oracle label.
    pub fn oracle_fingerprint(&self) -> String {
        format!(
            "step_tenths={};sample_items={};sweep_mode={:?};opt={};ra={}",
            self.step_tenths,
            self.sample_items,
            self.sweep_mode,
            self.opt_level.tag(),
            self.regalloc.tag()
        )
    }
}

/// Pick `k` evenly spaced elements from `ladder` (all of them if `k >=
/// len`), always including the first and last.
pub fn select_evenly(ladder: &[usize], k: usize) -> Vec<usize> {
    let n = ladder.len();
    if k >= n {
        return ladder.to_vec();
    }
    assert!(k >= 1);
    if k == 1 {
        return vec![ladder[n / 2]];
    }
    (0..k).map(|i| ladder[i * (n - 1) / (k - 1)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_evenly_includes_endpoints() {
        let ladder = [1, 2, 4, 8, 16, 32];
        assert_eq!(select_evenly(&ladder, 2), vec![1, 32]);
        assert_eq!(select_evenly(&ladder, 3), vec![1, 4, 32]);
        assert_eq!(select_evenly(&ladder, 6), ladder.to_vec());
        assert_eq!(select_evenly(&ladder, 99), ladder.to_vec());
        assert_eq!(select_evenly(&ladder, 1), vec![8]);
    }

    #[test]
    fn paper_config_matches_the_paper() {
        let c = HarnessConfig::paper();
        assert_eq!(c.machines.len(), 2);
        assert_eq!(c.machines[0].name, "mc1");
        assert_eq!(c.machines[1].name, "mc2");
        assert_eq!(c.step_tenths, 1, "10% step size");
        assert!(
            matches!(c.model, ModelConfig::Mlp(_)),
            "the paper used an ANN"
        );
    }

    #[test]
    fn quick_config_is_cheaper() {
        let q = HarnessConfig::quick();
        let p = HarnessConfig::paper();
        assert!(q.step_tenths > p.step_tenths);
        assert!(q.sample_items < p.sample_items);
        assert!(q.sizes_per_benchmark < 6);
    }
}
