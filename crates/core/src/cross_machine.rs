//! Cross-machine transfer evaluation: how well a predictor trained on one
//! machine's measurements performs when its predictions are priced on
//! *another* machine.
//!
//! The paper trains one model per machine and the fingerprint guards in
//! [`crate::db`] and [`crate::predictor::Framework::validate`] enforce
//! that at deployment time. This module quantifies *why*: it trains a
//! full-database predictor on each machine of a zoo and evaluates it
//! against every other machine's oracle, producing a transfer matrix of
//! prediction accuracy and oracle-relative slowdown. Off-diagonal cells
//! degrade sharply — the empirical argument for per-machine training.

use hetpart_ml::{geometric_mean, ModelConfig};
use hetpart_oclsim::Machine;
use serde::{Deserialize, Serialize};

use crate::db::{FeatureSet, TrainingDb};
use crate::predictor::PartitionPredictor;
use crate::report::{cell, num, rule};

/// One (train machine, eval machine) cell of the transfer matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossMachineCell {
    /// Machine the predictor was trained on.
    pub train_machine: String,
    /// Machine whose oracle priced the predictions.
    pub eval_machine: String,
    /// Whether the pair is comparable at all: a predictor's label space
    /// addresses a fixed device count, so machines of different arity
    /// cannot exchange predictors. Incompatible cells carry no numbers.
    pub compatible: bool,
    /// Records evaluated (0 for incompatible cells).
    pub records: usize,
    /// Exact oracle-partition match rate on the eval machine.
    pub accuracy: f64,
    /// Geometric mean of (predicted time / oracle time) on the eval
    /// machine — 1.0 is oracle-perfect, higher is slower.
    pub oracle_slowdown: f64,
}

/// The full train × eval transfer matrix over a machine zoo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossMachineMatrix {
    /// Machine names, in matrix order (rows = train, columns = eval).
    pub machines: Vec<String>,
    /// Row-major cells: `cells[i * machines.len() + j]` trains on machine
    /// `i` and evaluates on machine `j`.
    pub cells: Vec<CrossMachineCell>,
}

/// Build the transfer matrix: train a full-database predictor per machine
/// and price its predictions against every machine's oracle sweeps.
///
/// `machines` and `dbs` must align index-by-index (each database collected
/// on its machine); the databases must be collected with
/// [`hetpart_runtime::SweepMode::Full`] so arbitrary predicted partitions
/// can be priced.
///
/// # Panics
/// Panics if a database's machine identity does not match its machine, or
/// if a predicted partition is missing from an eval sweep (a `Pruned`
/// collection).
pub fn cross_machine_matrix(
    machines: &[Machine],
    dbs: &[TrainingDb],
    model: &ModelConfig,
    feature_set: FeatureSet,
) -> CrossMachineMatrix {
    assert_eq!(
        machines.len(),
        dbs.len(),
        "one training database per machine"
    );
    for (m, db) in machines.iter().zip(dbs) {
        assert_eq!(db.machine, m.name, "database collected on its machine");
        assert_eq!(
            db.machine_fingerprint,
            m.fingerprint(),
            "database fingerprint matches its machine"
        );
    }
    let predictors: Vec<PartitionPredictor> = dbs
        .iter()
        .map(|db| PartitionPredictor::train(db, model, feature_set))
        .collect();
    let mut cells = Vec::with_capacity(machines.len() * machines.len());
    for (train_idx, predictor) in predictors.iter().enumerate() {
        for (eval_idx, eval_db) in dbs.iter().enumerate() {
            cells.push(evaluate_cell(
                &machines[train_idx],
                predictor,
                &machines[eval_idx],
                eval_db,
                feature_set,
            ));
        }
    }
    CrossMachineMatrix {
        machines: machines.iter().map(|m| m.name.clone()).collect(),
        cells,
    }
}

fn evaluate_cell(
    train_machine: &Machine,
    predictor: &PartitionPredictor,
    eval_machine: &Machine,
    eval_db: &TrainingDb,
    feature_set: FeatureSet,
) -> CrossMachineCell {
    if train_machine.num_devices() != eval_machine.num_devices() {
        return CrossMachineCell {
            train_machine: train_machine.name.clone(),
            eval_machine: eval_machine.name.clone(),
            compatible: false,
            records: 0,
            accuracy: f64::NAN,
            oracle_slowdown: f64::NAN,
        };
    }
    let mut hits = 0usize;
    let mut slowdowns = Vec::with_capacity(eval_db.records.len());
    for r in &eval_db.records {
        let predicted = predictor
            .predict_vec(&r.features(feature_set))
            .unwrap_or_else(|e| {
                panic!(
                    "predictor trained on `{}` rejected features of `{}` (n = {}) from `{}`: {e}",
                    train_machine.name, r.program, r.size, eval_machine.name
                )
            });
        let predicted_time = r.sweep.time_of(&predicted).unwrap_or_else(|| {
            panic!(
                "partition {predicted} was not priced in the `{}` sweep for {} (n = {}) — \
                 cross-machine evaluation needs databases collected with SweepMode::Full",
                eval_machine.name, r.program, r.size
            )
        });
        if predicted == r.best().partition {
            hits += 1;
        }
        slowdowns.push(predicted_time / r.best().time);
    }
    CrossMachineCell {
        train_machine: train_machine.name.clone(),
        eval_machine: eval_machine.name.clone(),
        compatible: true,
        records: eval_db.records.len(),
        accuracy: hits as f64 / eval_db.records.len().max(1) as f64,
        oracle_slowdown: geometric_mean(&slowdowns),
    }
}

impl CrossMachineMatrix {
    /// The cell training on machine `i` and evaluating on machine `j`.
    pub fn cell(&self, train_idx: usize, eval_idx: usize) -> &CrossMachineCell {
        &self.cells[train_idx * self.machines.len() + eval_idx]
    }

    /// Render the matrix as two tables (accuracy, oracle slowdown);
    /// incompatible cells print as `-`.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Cross-machine transfer matrix: rows train, columns evaluate.\n\
             Diagonal = same-machine (training-set) performance; off-diagonal\n\
             shows what deploying a foreign predictor would cost.\n\n",
        );
        for (title, pick) in [
            (
                "prediction accuracy (%)",
                (|c: &CrossMachineCell| c.accuracy * 100.0) as fn(&CrossMachineCell) -> f64,
            ),
            ("oracle slowdown (x)", |c: &CrossMachineCell| {
                c.oracle_slowdown
            }),
        ] {
            out.push_str(&format!("== {title} ==\n"));
            out.push_str(&cell("train \\ eval", 18));
            for m in &self.machines {
                out.push(' ');
                out.push_str(&cell(m, 12));
            }
            out.push('\n');
            out.push_str(&format!("{}\n", rule(19 + 13 * self.machines.len())));
            for (i, m) in self.machines.iter().enumerate() {
                out.push_str(&cell(m, 18));
                for j in 0..self.machines.len() {
                    let c = self.cell(i, j);
                    out.push(' ');
                    if c.compatible {
                        out.push_str(&num(pick(c), 12));
                    } else {
                        out.push_str(&cell("-", 12));
                    }
                }
                out.push('\n');
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HarnessConfig;
    use crate::train::collect_training_db;
    use hetpart_ml::TreeConfig;
    use hetpart_oclsim::machines;

    fn tiny_matrix(machine_list: Vec<Machine>) -> CrossMachineMatrix {
        let benches: Vec<_> = hetpart_suite::all()
            .into_iter()
            .filter(|b| ["vec_add", "nbody", "blackscholes", "sgemm"].contains(&b.name))
            .collect();
        let cfg = HarnessConfig {
            sizes_per_benchmark: 2,
            sample_items: 32,
            step_tenths: 5,
            ..HarnessConfig::quick()
        };
        let dbs: Vec<TrainingDb> = machine_list
            .iter()
            .map(|m| collect_training_db(m, &benches, &cfg).expect("training succeeds"))
            .collect();
        cross_machine_matrix(
            &machine_list,
            &dbs,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::Both,
        )
    }

    #[test]
    fn matrix_covers_every_pair_and_diagonal_fits_its_training_set() {
        let m = tiny_matrix(vec![machines::mc1(), machines::mc2()]);
        assert_eq!(m.machines, vec!["mc1", "mc2"]);
        assert_eq!(m.cells.len(), 4);
        for i in 0..2 {
            for j in 0..2 {
                let c = m.cell(i, j);
                assert_eq!(c.train_machine, m.machines[i]);
                assert_eq!(c.eval_machine, m.machines[j]);
                assert!(c.compatible, "mc1 and mc2 are both 3-device machines");
                assert!(c.records > 0);
                assert!((0.0..=1.0).contains(&c.accuracy));
                assert!(
                    c.oracle_slowdown >= 1.0 - 1e-9,
                    "nothing beats the oracle: {c:?}"
                );
            }
            // A tree evaluated on its own training set recovers most
            // oracle labels; transfer cannot do better than that.
            let own = m.cell(i, i);
            assert!(
                own.accuracy >= 0.5,
                "diagonal should fit its training set: {own:?}"
            );
        }
        let txt = m.render();
        assert!(txt.contains("prediction accuracy"));
        assert!(txt.contains("oracle slowdown"));
    }

    #[test]
    fn arity_mismatched_machines_get_incompatible_cells() {
        // igpu_laptop has 2 devices; the paper machines have 3.
        let m = tiny_matrix(vec![machines::mc2(), machines::by_name("igpu_laptop")]);
        assert!(m.cell(0, 0).compatible);
        assert!(m.cell(1, 1).compatible);
        let c = m.cell(0, 1);
        assert!(!c.compatible);
        assert_eq!(c.records, 0);
        assert!(c.accuracy.is_nan() && c.oracle_slowdown.is_nan());
        assert!(!m.cell(1, 0).compatible);
        assert!(m.render().contains('-'));
    }
}
