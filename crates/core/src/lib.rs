//! # hetpart-core
//!
//! The task-partitioning framework of the paper, end to end:
//!
//! * **Training phase** ([`train`]): every benchmark runs at every problem
//!   size under every partitioning of the 10%-step space on a simulated
//!   machine; static features, runtime features and measurements land in a
//!   [`db::TrainingDb`] — or stream into per-(machine, program) JSONL
//!   shards ([`db::ShardedDb`]) that resume after a crash and merge
//!   across processes with stable labels.
//! * **Model** ([`predictor`]): an offline-trained classifier maps
//!   (static + runtime) features to the best partitioning.
//! * **Deployment phase** ([`predictor::Framework`]): a (new) kernel is
//!   compiled, its features collected, a partitioning predicted, and the
//!   launch executed across the machine's devices.
//! * **Deployment service** ([`serve`]): the concurrent serving layer —
//!   launches are enqueued and executed by a worker pool, with plans
//!   memoized per (kernel fingerprint, launch shape) so repeat traffic
//!   skips probe sampling and model inference entirely.
//! * **Evaluation** ([`eval`]): reproduces Figure 1 and the paper's prose
//!   claims, plus model-comparison / feature-ablation / step-sensitivity
//!   extension experiments, all under leave-one-program-out
//!   cross-validation.
//!
//! ```no_run
//! use hetpart_core::{config::HarnessConfig, eval};
//!
//! let ctx = eval::EvalContext::build_full_suite(HarnessConfig::paper());
//! let fig1 = eval::figure1(&ctx);
//! println!("{}", fig1.render());
//! ```

pub mod config;
pub mod cross_machine;
pub mod db;
pub mod eval;
pub mod predictor;
pub mod report;
pub mod serve;
pub mod train;

pub use config::HarnessConfig;
pub use cross_machine::{cross_machine_matrix, CrossMachineCell, CrossMachineMatrix};
pub use db::{DbError, FeatureSet, ShardedDb, TrainingDb, TrainingRecord, DB_SCHEMA_VERSION};
pub use eval::EvalContext;
pub use predictor::{DeployError, Framework, LaunchPlan, PartitionPredictor, PredictError};
pub use serve::{
    AdmissionPolicy, PlanKey, ServedLaunch, Service, ServiceConfig, ServiceStats, StripedCache,
    Ticket,
};
pub use train::{collect_training_db, collect_training_db_sharded, TrainError};
