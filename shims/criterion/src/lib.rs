//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the bench targets use (`criterion_group!` in
//! both plain and `name/config/targets` forms, `criterion_main!`,
//! `Criterion::{default, sample_size, bench_function, benchmark_group}`,
//! group `throughput`/`finish`, `Bencher::iter`) with a simple wall-clock
//! harness: warm up once, time `sample_size` iterations, report mean and
//! min. No statistics engine, no HTML reports — numbers on stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration + reporter.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Entry point used by `criterion_main!`.
    pub fn final_summary(&self) {}
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.criterion.sample_size, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; `iter` runs and times the
/// workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration (untimed).
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<44} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / mean.as_secs_f64();
            format!("  {:.3e} elem/s", per_sec)
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / mean.as_secs_f64();
            format!("  {:.3e} B/s", per_sec)
        }
        None => String::new(),
    };
    println!("{id:<44} mean {mean:>12.3?}  min {min:>12.3?}{extra}");
}

/// Define a benchmark group function, plain or configured form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.benchmark_group("grp")
            .throughput(Throughput::Elements(10))
            .bench_function("ten", |b| b.iter(|| (0..10).sum::<usize>()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = trivial
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
