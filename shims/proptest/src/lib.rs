//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators the workspace's property tests use
//! — range strategies, tuples, `Just`, `prop_map`, `prop_flat_map`,
//! `prop_filter_map`, `prop_recursive`, `prop_oneof!`,
//! `proptest::collection::vec`, and the `proptest!` /
//! `#![proptest_config]` macros — as plain deterministic random
//! generation. No shrinking: a failing case panics with the generated
//! inputs in the assertion message (all generation is seeded per test
//! name, so failures reproduce exactly).

use std::rc::Rc;

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic SplitMix64 generator, seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Bounded recursive strategy: expand `f` up to `depth` times around
    /// the base (leaf) strategy. `_desired_size` and `_expected_branch`
    /// only shape the distribution in real proptest; generation here stays
    /// bounded by construction.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so generated sizes vary.
            let expanded = f(strat).boxed();
            strat = Union {
                options: vec![leaf.clone(), expanded],
            }
            .boxed();
        }
        strat
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn ErasedStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

trait ErasedStrategy<V> {
    fn gen_erased(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn gen_erased(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> V {
        self.0.gen_erased(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.gen_value(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map gave up after 1000 rejections: {}",
            self.reason
        );
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.reason);
    }
}

/// Uniform choice between strategies of the same value type (the engine
/// behind `prop_oneof!`).
pub struct Union<V> {
    pub options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len());
        self.options[idx].gen_value(rng)
    }
}

// ---------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64();
                (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// Accepted by [`vec`]: a fixed length or a length range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + rng.below(span.max(1));
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// No shrinking in the shim, so property assertions are plain assertions:
/// the panic message carries the generated inputs via the format args.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` test-definition macro: plain and
/// `#![proptest_config(...)]` forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($param:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::seeded(concat!(module_path!(), "::", stringify!($name)));
            let __strategies = ($($strategy,)+);
            for __case in 0..__config.cases {
                let ($($param,)+) = $crate::Strategy::gen_value(&__strategies, &mut __rng);
                $body
            }
        }

        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -5i32..=5, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..=10, 2..40)) {
            prop_assert!(v.len() >= 2 && v.len() < 40);
            prop_assert!(v.iter().all(|&b| b <= 10));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => {
                    let _ = *n;
                    1
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat =
            prop_oneof![(0u8..255).prop_map(Tree::Leaf)].prop_recursive(4, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::seeded("recursive_terminates");
        for _ in 0..200 {
            let t = strat.gen_value(&mut rng);
            assert!(depth(&t) <= 16);
        }
    }

    #[test]
    fn filter_map_rescales() {
        let strat =
            crate::collection::vec(0u8..=10, 1..=4).prop_filter_map("sum to 10", |mut v| {
                let partial: u32 = v[..v.len() - 1].iter().map(|&s| u32::from(s)).sum();
                if partial > 10 {
                    return None;
                }
                let last = v.len() - 1;
                v[last] = (10 - partial) as u8;
                Some(v)
            });
        let mut rng = TestRng::seeded("filter_map_rescales");
        for _ in 0..100 {
            let v = strat.gen_value(&mut rng);
            let sum: u32 = v.iter().map(|&s| u32::from(s)).sum();
            assert_eq!(sum, 10);
        }
    }
}
