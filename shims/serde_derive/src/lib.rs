//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote` — they cannot be fetched in
//! this build environment) that generate impls of the shim `serde` traits:
//! `Serialize::to_value` and `Deserialize::from_value` over the
//! self-describing `serde::Value` tree.
//!
//! Supported shapes — the ones the workspace uses:
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently, like serde),
//! * unit structs,
//! * enums with unit / newtype / tuple / struct variants, in serde's
//!   externally-tagged representation.
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce a
//! compile error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match Item::parse(input) {
        Ok(item) => item
            .serialize_impl()
            .parse()
            .expect("generated code must parse"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match Item::parse(input) {
        Ok(item) => item
            .deserialize_impl()
            .parse()
            .expect("generated code must parse"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------
// A minimal item model
// ---------------------------------------------------------------------

enum Shape {
    Unit,
    /// Tuple struct / variant with N unnamed fields.
    Tuple(usize),
    /// Struct / variant with named fields.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

impl Item {
    fn parse(input: TokenStream) -> Result<Item, String> {
        let tokens: Vec<TokenTree> = input.into_iter().collect();
        let mut i = 0;

        skip_attrs_and_vis(&tokens, &mut i)?;

        let kind = match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
            other => {
                return Err(format!(
                    "serde shim derive: expected struct/enum, got {other:?}"
                ))
            }
        };
        i += 1;

        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected item name, got {other:?}"
                ))
            }
        };
        i += 1;

        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            return Err(format!(
                "serde shim derive: generic type `{name}` is not supported"
            ));
        }

        let body = match kind {
            "struct" => match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Struct(Shape::Named(parse_named_fields(g.stream())?))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Shape::Unit),
                other => return Err(format!("serde shim derive: bad struct body {other:?}")),
            },
            _ => match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Enum(parse_variants(g.stream())?)
                }
                other => return Err(format!("serde shim derive: bad enum body {other:?}")),
            },
        };

        Ok(Item { name, body })
    }
}

/// Skip `#[...]` attributes (incl. doc comments) and `pub` / `pub(...)`.
///
/// `#[serde(...)]` is rejected rather than skipped: silently ignoring it
/// would change the serialized representation relative to real serde.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if matches!(g.stream().into_iter().next(),
                        Some(TokenTree::Ident(id)) if id.to_string() == "serde")
                    {
                        return Err(
                            "serde shim derive: #[serde(...)] attributes are not supported"
                                .to_string(),
                        );
                    }
                }
                *i += 2; // `#` + the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => break,
        }
    }
    Ok(())
}

/// Split a token stream at top-level commas, tracking `<...>` depth so
/// commas inside generic argument lists don't split.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i)?;
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => {}
            other => return Err(format!("serde shim derive: bad field {other:?}")),
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i)?;
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue,
            other => return Err(format!("serde shim derive: bad variant {other:?}")),
        };
        i += 1;
        let shape = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde shim derive: explicit discriminant on `{name}` is not supported"
                ))
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------

impl Item {
    fn serialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.body {
            Body::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
            Body::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Body::Struct(Shape::Tuple(n)) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            }
            Body::Struct(Shape::Named(fields)) => named_fields_to_value(fields, "self."),
            Body::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vn = &v.name;
                        match &v.shape {
                            Shape::Unit => format!(
                                "{name}::{vn} => ::serde::Value::Str(String::from({vn:?})),"
                            ),
                            Shape::Tuple(1) => format!(
                                "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(String::from({vn:?}), ::serde::Serialize::to_value(__f0))]),"
                            ),
                            Shape::Tuple(n) => {
                                let binds: Vec<String> =
                                    (0..*n).map(|i| format!("__f{i}")).collect();
                                let items: Vec<String> = (0..*n)
                                    .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                    .collect();
                                format!(
                                    "{name}::{vn}({}) => ::serde::Value::Map(vec![(String::from({vn:?}), ::serde::Value::Seq(vec![{}]))]),",
                                    binds.join(", "),
                                    items.join(", ")
                                )
                            }
                            Shape::Named(fields) => {
                                let binds = fields.join(", ");
                                let entries: Vec<String> = fields
                                    .iter()
                                    .map(|f| format!(
                                        "(String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    ))
                                    .collect();
                                format!(
                                    "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(String::from({vn:?}), ::serde::Value::Map(vec![{}]))]),",
                                    entries.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(" "))
            }
        };
        format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
             }}"
        )
    }

    fn deserialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.body {
            Body::Struct(Shape::Unit) => format!("Ok({name})"),
            Body::Struct(Shape::Tuple(1)) => {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Body::Struct(Shape::Tuple(n)) => format!(
                "{{ let __items = seq_of_len(__v, {n}, {name:?})?; Ok({name}({})) }}",
                (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Body::Struct(Shape::Named(fields)) => format!(
                "Ok({name} {{ {} }})",
                named_fields_from_value(fields, name, "__v")
            ),
            Body::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| matches!(v.shape, Shape::Unit))
                    .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                    .collect();
                let tagged_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| !matches!(v.shape, Shape::Unit))
                    .map(|v| {
                        let vn = &v.name;
                        match &v.shape {
                            Shape::Unit => unreachable!(),
                            Shape::Tuple(1) => format!(
                                "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                            ),
                            Shape::Tuple(n) => format!(
                                "{vn:?} => {{ let __items = seq_of_len(__inner, {n}, {name:?})?; Ok({name}::{vn}({})) }}",
                                (0..*n)
                                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                            Shape::Named(fields) => format!(
                                "{vn:?} => Ok({name}::{vn} {{ {} }}),",
                                named_fields_from_value(fields, name, "__inner")
                            ),
                        }
                    })
                    .collect();
                format!(
                    "match __v {{\n\
                         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                             {unit}\n\
                             __other => Err(::serde::DeError::unknown_variant({name:?}, __other)),\n\
                         }},\n\
                         ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                             let (__tag, __inner) = &__entries[0];\n\
                             match __tag.as_str() {{\n\
                                 {tagged}\n\
                                 __other => Err(::serde::DeError::unknown_variant({name:?}, __other)),\n\
                             }}\n\
                         }}\n\
                         __other => Err(::serde::DeError::type_mismatch(\"externally tagged enum\", __other)),\n\
                     }}",
                    unit = unit_arms.join("\n"),
                    tagged = tagged_arms.join("\n"),
                )
            }
        };
        format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     #[allow(dead_code)]\n\
                     fn seq_of_len<'a>(v: &'a ::serde::Value, n: usize, ty: &str) -> ::std::result::Result<&'a [::serde::Value], ::serde::DeError> {{\n\
                         let items = v.as_seq().ok_or_else(|| ::serde::DeError::type_mismatch(\"sequence\", v))?;\n\
                         if items.len() != n {{\n\
                             return Err(::serde::DeError::custom(format!(\"{{ty}}: expected {{n}} elements, got {{}}\", items.len())));\n\
                         }}\n\
                         Ok(items)\n\
                     }}\n\
                     {body}\n\
                 }}\n\
             }}"
        )
    }
}

fn named_fields_to_value(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(String::from({f:?}), ::serde::Serialize::to_value(&{prefix}{f}))"))
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn named_fields_from_value(fields: &[String], ty: &str, src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({src}.get({f:?}).ok_or_else(|| ::serde::DeError::missing_field({ty:?}, {f:?}))?)?"
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}
