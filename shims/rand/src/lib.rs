//! Offline stand-in for `rand` (0.8-style API surface).
//!
//! Provides exactly what the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` over
//! `Range<T>`, and `seq::SliceRandom::shuffle`. The generator is
//! SplitMix64 — not the real `StdRng` (ChaCha12), but fully deterministic
//! for a fixed seed, which is the property the workspace's reproducibility
//! tests rely on.

use std::ops::Range;

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform double in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is negligible for the span sizes used here
                // (and irrelevant for a deterministic test oracle).
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64());
                (range.start as f64 + u * (range.end as f64 - range.start as f64)) as $t
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// The `Standard` distribution: `rng.gen::<T>()`.
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stands in for rand's ChaCha12
    /// `StdRng`; same API, different — but fixed — stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(-50i32..-10);
            assert!((-50..-10).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
