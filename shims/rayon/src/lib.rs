//! Offline stand-in for `rayon`.
//!
//! Implements the subset the workspace uses — `par_iter()` /
//! `into_par_iter()` followed by `map(...).collect()` — with real
//! parallelism: an atomic work queue drained by `std::thread::scope`
//! workers (dynamic scheduling, so uneven items load-balance), with
//! results written back by index so collection order always equals input
//! order regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

/// How many worker threads a parallel call uses.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Order-preserving parallel map: apply `f` to every item, returning
/// results in input order. Items are pulled from a shared atomic counter,
/// so expensive items don't serialize behind a static chunking.
pub fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let f = &f;
        let work = &work;
        let out = &out;
        let next = &next;
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("item taken once");
                let result = f(item);
                *out[i].lock().unwrap() = Some(result);
            });
        }
    });

    out.into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker filled every slot")
        })
        .collect()
}

/// A to-be-consumed parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map_vec(self.items, f);
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Execute the map in parallel and collect in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map_vec(self.items, self.f))
    }
}

/// `vec.into_par_iter()` / `range.into_par_iter()`.
pub trait IntoParallelIterator {
    type Item: Send;

    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `slice.par_iter()` — borrowed items.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;

    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_input_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_owned() {
        let v: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 1, 1]);
    }

    #[test]
    fn uneven_work_is_load_balanced_correctly() {
        // Heavier items at the front; results must still be in order.
        let out: Vec<u64> = (0..64usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|i| {
                let spins = if i < 4 { 200_000 } else { 10 };
                let mut acc = i as u64;
                for _ in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                std::hint::black_box(acc);
                i as u64
            })
            .collect();
        assert_eq!(out, (0..64).collect::<Vec<u64>>());
    }
}
