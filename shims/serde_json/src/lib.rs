//! Offline stand-in for `serde_json`: renders the shim `serde::Value`
//! tree to JSON text and parses it back. Supports the full JSON grammar
//! (escapes, `\uXXXX` incl. surrogate pairs, exponents). Non-finite floats
//! serialize as `null`, matching real serde_json.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None);
    Ok(out)
}

/// Serialize a value to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(0));
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Serialize straight into a [`serde::Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuild a typed value from a [`serde::Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting and
                // is valid JSON for finite values.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline_indent(out, level + 1);
                }
                write_value(item, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                newline_indent(out, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline_indent(out, level + 1);
                }
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                newline_indent(out, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new(format!(
                                        "invalid low surrogate \\u{lo:04x}"
                                    )));
                                }
                                let combined = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {:?}", other)));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(lead) => {
                    // Multi-byte UTF-8: the input arrived as &str, so the
                    // sequence is valid; decode just this character (a
                    // whole-tail from_utf8 here would make parsing
                    // quadratic in document size).
                    let width = match lead {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = self.pos + width;
                    let c = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| Error::new("invalid UTF-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    out.push(c);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = Value::Map(vec![
            (
                "a".into(),
                Value::Seq(vec![Value::I64(-3), Value::F64(0.5), Value::Null]),
            ),
            ("b".into(), Value::Str("x\"\\\n\u{1}é𝄞".into())),
            ("c".into(), Value::Bool(true)),
            ("d".into(), Value::U64(u64::MAX)),
        ]);
        for pretty in [false, true] {
            let mut s = String::new();
            write_value(&v, &mut s, if pretty { Some(0) } else { None });
            assert_eq!(parse(&s).unwrap(), v, "pretty={pretty}: {s}");
        }
    }

    #[test]
    fn float_formatting_roundtrips() {
        for x in [0.1, 1.0, 1e300, -2.5e-9, 123456789.123456] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn surrogate_pairs_decode_and_bad_pairs_error() {
        assert_eq!(
            parse("\"\\uD834\\uDD1E\"").unwrap(),
            Value::Str("\u{1D11E}".into())
        );
        // High surrogate followed by a non-low-surrogate escape must be a
        // parse error, not an overflow or a wrong character.
        assert!(parse("\"\\uD834\\u0041\"").is_err());
        // Unpaired high surrogate at end of string.
        assert!(parse("\"\\uD834\"").is_err());
        // Lone low surrogate is not a valid scalar value.
        assert!(parse("\"\\uDC00\"").is_err());
    }
}
