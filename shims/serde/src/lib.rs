//! Offline stand-in for `serde`.
//!
//! The real crates.io `serde` cannot be fetched in this build environment,
//! so this shim provides the subset the workspace uses: the `Serialize` /
//! `Deserialize` traits (over a self-describing [`Value`] tree instead of
//! serde's visitor architecture) and the derive macros re-exported from
//! `serde_derive`. `serde_json` (also shimmed) renders [`Value`] to and
//! from JSON text, so `#[derive(Serialize, Deserialize)]` +
//! `serde_json::{to_string, from_str}` round-trip exactly as with the real
//! crates, using serde's externally-tagged enum representation.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key order is preserved (field declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The contained sequence, if this is a `Seq`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("{ty}: missing field `{field}`"))
    }

    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        DeError(format!("{ty}: unknown variant `{variant}`"))
    }

    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        DeError(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) => i64::try_from(x)
                        .map_err(|_| DeError::custom(format!("integer {x} out of range")))?,
                    ref other => return Err(DeError::type_mismatch("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: u64 = match *v {
                    Value::U64(x) => x,
                    Value::I64(x) => u64::try_from(x)
                        .map_err(|_| DeError::custom(format!("integer {x} out of range")))?,
                    ref other => return Err(DeError::type_mismatch("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

// `Value` round-trips through itself, like `serde_json::Value` in the
// real crates — callers can parse to a tree first (e.g. to inspect a
// schema-version field) and rebuild typed data from it afterwards.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::I64(x) => Ok(x as f64),
            Value::U64(x) => Ok(x as f64),
            ref other => Err(DeError::type_mismatch("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::type_mismatch("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_seq().ok_or_else(|| DeError::type_mismatch("tuple", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: ToString + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::type_mismatch("map", other)),
        }
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output; serde_json with preserve_order off
        // does not sort, but determinism is a workspace invariant.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::type_mismatch("map", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Some(3u32).to_value(), Value::U64(3));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(7)).unwrap(), Some(7));
    }

    #[test]
    fn numeric_cross_width() {
        assert_eq!(u8::from_value(&Value::I64(200)).unwrap(), 200);
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u8::from_value(&Value::I64(-1)).is_err());
        assert_eq!(f64::from_value(&Value::I64(-2)).unwrap(), -2.0);
    }
}
